"""Resource-lifecycle analyzer (:data:`RULE_RESOURCE_LEAK`).

Inventories acquisition sites of OS resources — ``subprocess.Popen``,
``socket.socket``/``create_connection``, the ``open()`` builtin,
``os.fdopen``, ``tempfile.mkdtemp``/``TemporaryDirectory``,
``ThreadPoolExecutor``/``ProcessPoolExecutor``, and started
non-daemon ``threading.Thread``s — and flags those with **no reachable
release at all**: no ``close``/``terminate``/``wait``/``join``/
``shutdown``/``cleanup`` call on the handle, no ``with`` management, no
``shutil.rmtree``/``os.rmdir`` for a temp dir path.

Honest like the lock analyzer: the rule only fires when the whole
lifecycle is provably local.  A handle that *escapes* — returned,
yielded, stored on an object, passed to another call, aliased,
captured by a closure, put in a container — has an unresolvable
lifetime and produces no finding.  A release anywhere in the function
(even on one conditional path: ``finally`` blocks and error paths
count the same) counts as reachable.  What remains is the unambiguous
leak shapes: ``f = open(p)`` read and forgotten,
``subprocess.Popen(...)`` fired and dropped, ``open(p).read()`` with
the handle never retained, and ``threading.Thread(...).start()`` on a
non-daemon thread that can never be joined.  Module-level acquisitions
are process-lifetime singletons and exempt.

The runtime counterpart (:mod:`.resource_tracker`,
``REPRO_RESOURCE_TRACK=1``) covers the dynamic remainder the same way
the lock witness backs the static lock-order pass.
"""

from __future__ import annotations

import ast

from .findings import LintFinding
from .project import (FunctionInfo, Project, SourceModule,
                      iter_nodes_excluding_nested)

__all__ = ["RULE_RESOURCE_LEAK", "run_resources"]

RULE_RESOURCE_LEAK = "resource-leak"

#: origin -> (kind label, method names that release the handle).
_ACQUIRERS = {
    "subprocess.Popen": ("subprocess", {"wait", "kill", "terminate",
                                        "communicate"}),
    "socket.socket": ("socket", {"close", "detach", "shutdown"}),
    "socket.create_connection": ("socket", {"close", "detach",
                                            "shutdown"}),
    "os.fdopen": ("file", {"close"}),
    "tempfile.TemporaryDirectory": ("temp dir", {"cleanup"}),
    "tempfile.mkdtemp": ("temp dir", set()),
    "concurrent.futures.ThreadPoolExecutor": ("executor", {"shutdown"}),
    "concurrent.futures.ProcessPoolExecutor": ("executor", {"shutdown"}),
}
_OPEN_RELEASES = {"close"}
_THREAD_CTORS = ("threading.Thread", "threading.Timer")

#: Module-level functions that release a path-like resource passed in.
_PATH_RELEASERS = {"shutil.rmtree", "os.rmdir", "os.removedirs"}


def _acquisition(call: ast.AST, module: SourceModule) \
        -> tuple[str, set[str]] | None:
    """``(kind, release method names)`` when ``call`` acquires an OS
    resource, else ``None``.  Threads are handled separately."""
    if not isinstance(call, ast.Call):
        return None
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open" and "open" not in module.imports:
            return "file", set(_OPEN_RELEASES)
        origin = module.imports.get(func.id)
        if origin in _ACQUIRERS:
            return _ACQUIRERS[origin]
        return None
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        base = module.imports.get(func.value.id)
        if base:
            entry = _ACQUIRERS.get(f"{base}.{func.attr}")
            if entry is not None:
                return entry
    return None


def _thread_ctor(call: ast.AST, module: SourceModule) -> bool:
    if not isinstance(call, ast.Call):
        return False
    func = call.func
    if isinstance(func, ast.Name):
        return module.imports.get(func.id) in _THREAD_CTORS
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        base = module.imports.get(func.value.id)
        return bool(base) and f"{base}.{func.attr}" in _THREAD_CTORS
    return False


def _is_daemon(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "daemon" and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    return False


def _parent_map(root: ast.AST) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _is_path_releaser(call: ast.Call, module: SourceModule) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return module.imports.get(func.id) in _PATH_RELEASERS
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        base = module.imports.get(func.value.id)
        return bool(base) and f"{base}.{func.attr}" in _PATH_RELEASERS
    return False


class _FunctionScan:
    """Lifecycle scan of one function (module docstring)."""

    def __init__(self, fn: FunctionInfo):
        self.fn = fn
        self.module = fn.module
        self.parents = _parent_map(fn.node)
        self.findings: list[LintFinding] = []
        self._scan()

    # ----------------------------------------------------------- candidates
    def _scan(self) -> None:
        for stmt in iter_nodes_excluding_nested(self.fn.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and isinstance(stmt.value, ast.Call):
                self._check_bound(stmt.targets[0].id, stmt.value)
            elif isinstance(stmt, ast.Expr) \
                    and isinstance(stmt.value, ast.Call):
                self._check_discarded(stmt.value)

    def _check_bound(self, name: str, call: ast.Call) -> None:
        entry = _acquisition(call, self.module)
        if entry is not None:
            kind, releases = entry
            if self._released_or_escapes(name, call, releases,
                                         temp_dir=(kind == "temp dir")):
                return
            self.findings.append(LintFinding(
                path=self.module.rel, line=call.lineno,
                rule=RULE_RESOURCE_LEAK,
                message=f"{kind} acquired here is never released in "
                        f"{self.fn.qualname}: no "
                        f"{'/'.join(sorted(releases)) or 'cleanup'}"
                        f" call, no 'with', and the handle never "
                        f"escapes the function"))
        elif _thread_ctor(call, self.module) and not _is_daemon(call) \
                and not self._daemon_assigned(name):
            if not self._thread_started(name):
                return  # never started: not an OS resource yet
            if self._released_or_escapes(name, call, {"join"}):
                return
            self.findings.append(LintFinding(
                path=self.module.rel, line=call.lineno,
                rule=RULE_RESOURCE_LEAK,
                message=f"non-daemon thread started in "
                        f"{self.fn.qualname} is never joined and the "
                        f"handle never escapes; join it or mark it "
                        f"daemon=True"))

    def _check_discarded(self, call: ast.Call) -> None:
        """Bare-expression acquisitions: the handle is unrecoverable."""
        entry = _acquisition(call, self.module)
        if entry is not None:
            kind, releases = entry
            self.findings.append(LintFinding(
                path=self.module.rel, line=call.lineno,
                rule=RULE_RESOURCE_LEAK,
                message=f"{kind} acquired and immediately discarded in "
                        f"{self.fn.qualname}: the handle is never "
                        f"bound, so no "
                        f"{'/'.join(sorted(releases)) or 'cleanup'} "
                        f"can ever run"))
            return
        # Chained call on a fresh acquisition: open(p).read(),
        # Popen(...).wait(), Thread(...).start().
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        inner = func.value
        entry = _acquisition(inner, self.module)
        if entry is not None:
            kind, releases = entry
            if func.attr in releases:
                return  # e.g. subprocess.Popen(...).wait()
            self.findings.append(LintFinding(
                path=self.module.rel, line=call.lineno,
                rule=RULE_RESOURCE_LEAK,
                message=f"{kind} acquired here with the handle never "
                        f"retained ('.{func.attr}()' chained on the "
                        f"constructor), so it can never be released"))
        elif _thread_ctor(inner, self.module) and func.attr == "start" \
                and not _is_daemon(inner):
            self.findings.append(LintFinding(
                path=self.module.rel, line=call.lineno,
                rule=RULE_RESOURCE_LEAK,
                message=f"non-daemon thread started in "
                        f"{self.fn.qualname} with the handle never "
                        f"retained, so it can never be joined; keep "
                        f"the handle or mark it daemon=True"))

    # ------------------------------------------------------ release/escape
    def _daemon_assigned(self, name: str) -> bool:
        """``handle.daemon = True`` anywhere in the function — the only
        way to daemonize a ``threading.Timer``, whose constructor takes
        no ``daemon=`` keyword."""
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign) \
                    and isinstance(node.value, ast.Constant) \
                    and node.value.value:
                for target in node.targets:
                    if isinstance(target, ast.Attribute) \
                            and target.attr == "daemon" \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == name:
                        return True
        return False

    def _thread_started(self, name: str) -> bool:
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "start" \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == name:
                return True
        return False

    def _released_or_escapes(self, name: str, acquisition: ast.Call,
                             releases: set[str],
                             temp_dir: bool = False) -> bool:
        """True when a release is reachable or the handle's lifetime is
        not provably local (either way: no finding)."""
        # Captured by a nested function/lambda: lifetime unresolvable.
        for node in ast.walk(self.fn.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)) and node is not self.fn.node:
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return True
        for node in iter_nodes_excluding_nested(self.fn.node):
            if not (isinstance(node, ast.Name) and node.id == name):
                continue
            parent = self.parents.get(id(node))
            if isinstance(parent, ast.Attribute):
                grand = self.parents.get(id(parent))
                if isinstance(grand, ast.Call) and grand.func is parent \
                        and parent.attr in releases:
                    return True  # handle.close() / proc.wait() / t.join()
                continue  # other method/attr access: not an escape
            if isinstance(parent, ast.withitem) \
                    and parent.context_expr is node:
                return True  # with handle: ... manages the lifetime
            if isinstance(parent, ast.Assign) \
                    and node in parent.targets:
                continue  # rebinding the name, not a use
            if isinstance(parent, ast.Call):
                if temp_dir and _is_path_releaser(parent, self.module):
                    return True  # shutil.rmtree(path)
                return True  # passed to a call: escapes
            if isinstance(parent, (ast.Expr, ast.Compare, ast.BoolOp,
                                   ast.UnaryOp)):
                continue  # pure read (truthiness test etc.)
            if isinstance(parent, ast.Subscript) and parent.value is node:
                continue  # indexing the handle, not storing it
            return True  # returned/yielded/stored/aliased: escapes
        return False


def run_resources(project: Project) -> list[LintFinding]:
    findings: list[LintFinding] = []
    for fn in project.functions:
        findings.extend(_FunctionScan(fn).findings)
    return sorted(set(findings))
