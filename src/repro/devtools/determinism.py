"""Determinism lint: nondeterminism sources in the numerics tier.

The repo's byte-identity guarantees (stacked == per-point routing,
``cached`` == ``naive`` sweeps, store keys) hold only if the numerics
tier is a pure function of its inputs and seeds.  This pass forbids the
three ambient-nondeterminism idioms Python makes easy:

:data:`RULE_UNSEEDED_RNG`
    Module-level RNG state — any stdlib ``random.*`` call, any legacy
    ``numpy.random.*`` distribution call, and ``default_rng()`` /
    ``Generator(PCG64())`` *without* a seed argument.  Seeded
    constructions (``default_rng(seed)``, ``random.Random(seed)``,
    caller-supplied ``np.random.Generator`` parameters) pass.

:data:`RULE_WALL_CLOCK`
    Wall-clock reads: ``time.time``/``time.time_ns`` and
    ``datetime.now``/``utcnow``/``today``.  (Monotonic timers are
    allowed — they measure, they don't leak into values.)

:data:`RULE_SET_ITER`
    Iterating an unordered ``set``/``frozenset`` (``for``,
    comprehensions, ``list(...)``/``tuple(...)``/``enumerate(...)``/
    ``"".join(...)`` over a set expression).  Python sets iterate in
    hash order, which varies across runs with ``PYTHONHASHSEED`` for
    str keys; ``sorted(<set>)`` is the deterministic spelling and is
    not flagged.

Scope: every module under the numerics tier (``core/``, ``nn/``,
``tensor/``) in full, plus — in *any* module — every function reachable
from ``cache_key``/``model_fingerprint``/``fingerprint`` (the
store-keying closure; a wall-clock read there silently poisons the
content-addressed cache).  Intentional exceptions take a
``# lint: allow(<rule>): reason`` escape (see
:mod:`repro.devtools.findings`).
"""

from __future__ import annotations

import ast
from collections import deque

from .findings import LintFinding
from .project import (FunctionInfo, Project, SourceModule,
                      iter_nodes_excluding_nested)

__all__ = ["RULE_UNSEEDED_RNG", "RULE_WALL_CLOCK", "RULE_SET_ITER",
           "NUMERICS_DIRS", "FINGERPRINT_SEEDS", "run_determinism"]

RULE_UNSEEDED_RNG = "det-unseeded-rng"
RULE_WALL_CLOCK = "det-wall-clock"
RULE_SET_ITER = "det-set-iter"

#: Top-level directories forming the numerics tier (scanned in full).
NUMERICS_DIRS = ("core", "nn", "tensor")

#: Function names seeding the store-keying reachability closure.
FINGERPRINT_SEEDS = ("cache_key", "model_fingerprint", "fingerprint",
                     "store_key")

#: Seeded RNG constructors: fine *with* arguments, flagged bare.
_SEEDABLE = {"default_rng", "Random", "PCG64", "SeedSequence", "Philox",
             "MT19937", "SFC64", "RandomState"}

_WALL_CLOCK_TIME = {"time", "time_ns"}
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}


def _origin(module: SourceModule, name: str) -> str:
    return module.imports.get(name, "")


class _FunctionChecker:
    """Runs the three node checks over one function (or module) body."""

    def __init__(self, module: SourceModule):
        self.module = module
        self.findings: list[LintFinding] = []

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(LintFinding(
            path=self.module.rel, line=getattr(node, "lineno", 1),
            rule=rule, message=message))

    # ------------------------------------------------------------------ rng
    def _check_rng(self, node: ast.Call) -> None:
        func = node.func
        has_args = bool(node.args or node.keywords)
        if isinstance(func, ast.Name):
            origin = _origin(self.module, func.id)
            if origin.startswith("random."):  # from random import shuffle
                name = origin.split(".", 1)[1]
                if name in _SEEDABLE and has_args:
                    return
                self._flag(RULE_UNSEEDED_RNG, node,
                           f"stdlib random.{name} draws from module-level "
                           f"RNG state; use a seeded "
                           f"np.random.default_rng(seed)")
            elif origin.startswith("numpy.random.") \
                    or origin.startswith("numpy.random "):
                name = origin.rsplit(".", 1)[1]
                if name in _SEEDABLE:
                    if not has_args:
                        self._flag(RULE_UNSEEDED_RNG, node,
                                   f"{name}() without a seed draws OS "
                                   f"entropy; pass an explicit seed")
                else:
                    self._flag(RULE_UNSEEDED_RNG, node,
                               f"legacy numpy.random.{name} uses global "
                               f"RNG state; use a seeded Generator")
            return
        if not isinstance(func, ast.Attribute):
            return
        chain = _attr_chain(func)
        if chain is None:
            return
        base, rest = chain[0], chain[1:]
        origin = _origin(self.module, base)
        dotted = ".".join([origin or base] + rest)
        if dotted.startswith("random.") and origin == "random":
            name = rest[-1]
            if name in _SEEDABLE and has_args:
                return
            self._flag(RULE_UNSEEDED_RNG, node,
                       f"stdlib random.{name} draws from module-level RNG "
                       f"state; use a seeded np.random.default_rng(seed)")
        elif dotted.startswith("numpy.random."):
            name = rest[-1]
            if name in _SEEDABLE:
                if not has_args:
                    self._flag(RULE_UNSEEDED_RNG, node,
                               f"np.random.{name}() without a seed draws "
                               f"OS entropy; pass an explicit seed")
            elif name[:1].islower():  # distribution calls, seed(), etc.
                self._flag(RULE_UNSEEDED_RNG, node,
                           f"legacy np.random.{name} uses global RNG "
                           f"state; use a seeded Generator")

    # ----------------------------------------------------------- wall clock
    def _check_wall_clock(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            origin = _origin(self.module, func.id)
            if origin == "time.time" or origin == "time.time_ns":
                self._flag(RULE_WALL_CLOCK, node,
                           f"wall-clock read {origin}() is "
                           f"run-dependent; thread a timestamp in "
                           f"explicitly")
            return
        if not isinstance(func, ast.Attribute):
            return
        chain = _attr_chain(func)
        if chain is None:
            return
        base, rest = chain[0], chain[1:]
        origin = _origin(self.module, base)
        if origin == "time" and len(rest) == 1 \
                and rest[0] in _WALL_CLOCK_TIME:
            self._flag(RULE_WALL_CLOCK, node,
                       f"wall-clock read time.{rest[0]}() is "
                       f"run-dependent; thread a timestamp in explicitly")
        elif rest and rest[-1] in _WALL_CLOCK_DATETIME:
            if origin.startswith("datetime") \
                    or base in ("datetime", "date"):
                self._flag(RULE_WALL_CLOCK, node,
                           f"wall-clock read "
                           f"{'.'.join([base] + rest)}() is "
                           f"run-dependent; thread a timestamp in "
                           f"explicitly")

    # -------------------------------------------------------- set iteration
    def _set_like(self, expr: ast.AST, local_sets: set[str]) -> bool:
        if isinstance(expr, ast.Set) or isinstance(expr, ast.SetComp):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in local_sets
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
                and expr.func.id in ("set", "frozenset"):
            return True
        if isinstance(expr, ast.BinOp) and isinstance(
                expr.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            return self._set_like(expr.left, local_sets) \
                or self._set_like(expr.right, local_sets)
        if isinstance(expr, ast.Call) and isinstance(
                expr.func, ast.Attribute) and expr.func.attr in (
                "union", "intersection", "difference",
                "symmetric_difference"):
            return self._set_like(expr.func.value, local_sets)
        return False

    def _check_set_iteration(self, root: ast.AST) -> None:
        local_sets: set[str] = set()
        for node in iter_nodes_excluding_nested(root):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and self._set_like(node.value, local_sets):
                local_sets.add(node.targets[0].id)
        # Iteration feeding an order-insensitive consumer is fine:
        # sorted({...}) *is* the deterministic spelling this rule asks
        # for, and min/max/sum/any/all/len cannot observe the order.
        safe: set[int] = set()
        for node in iter_nodes_excluding_nested(root):
            if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Name) and node.func.id in (
                    "sorted", "min", "max", "sum", "len", "any", "all",
                    "set", "frozenset"):
                for arg in node.args:
                    safe.add(id(arg))
        message = ("iteration order of an unordered set is hash-dependent "
                   "and varies across runs; iterate sorted(...) instead")
        for node in iter_nodes_excluding_nested(root):
            if isinstance(node, (ast.For, ast.AsyncFor)) \
                    and self._set_like(node.iter, local_sets):
                self._flag(RULE_SET_ITER, node, message)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp)):
                if id(node) in safe:
                    continue
                for gen in node.generators:
                    if self._set_like(gen.iter, local_sets):
                        self._flag(RULE_SET_ITER, node, message)
            elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Name) \
                    and node.func.id in ("list", "tuple", "enumerate") \
                    and node.args \
                    and self._set_like(node.args[0], local_sets):
                self._flag(RULE_SET_ITER, node, message)
            elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute) \
                    and node.func.attr == "join" and node.args \
                    and self._set_like(node.args[0], local_sets):
                self._flag(RULE_SET_ITER, node, message)

    # ---------------------------------------------------------------- entry
    def check_body(self, root: ast.AST) -> None:
        for node in iter_nodes_excluding_nested(root):
            if isinstance(node, ast.Call):
                self._check_rng(node)
                self._check_wall_clock(node)
        self._check_set_iteration(root)


def _attr_chain(node: ast.Attribute) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for computed receivers."""
    parts: list[str] = []
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return list(reversed(parts))


def _in_numerics_tier(module: SourceModule) -> bool:
    top = module.rel.split("/", 1)[0]
    return top in NUMERICS_DIRS


def _fingerprint_closure(project: Project) -> list[FunctionInfo]:
    """Functions reachable (via resolvable calls) from the store-keying
    seed functions, breadth-first over the whole project."""
    seeds = [fn for fn in project.functions
             if fn.name in FINGERPRINT_SEEDS]
    seen: set[int] = {id(fn) for fn in seeds}
    queue = deque(seeds)
    closure: list[FunctionInfo] = []
    while queue:
        fn = queue.popleft()
        closure.append(fn)
        local_types = project.local_types(fn)
        for node in iter_nodes_excluding_nested(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee = project.resolve_call(node, fn, local_types)
            if callee is not None and id(callee) not in seen:
                seen.add(id(callee))
                queue.append(callee)
    return closure


def run_determinism(project: Project) -> list[LintFinding]:
    findings: list[LintFinding] = []
    scanned_modules: set[str] = set()
    for module in project.modules:
        if _in_numerics_tier(module):
            scanned_modules.add(module.rel)
            checker = _FunctionChecker(module)
            checker.check_body(module.tree)
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    checker.check_body(node)
            findings.extend(checker.findings)
    for fn in _fingerprint_closure(project):
        if fn.module.rel in scanned_modules:
            continue  # already covered by the tier scan
        checker = _FunctionChecker(fn.module)
        checker.check_body(fn.node)
        findings.extend(checker.findings)
    return sorted(set(findings))
