"""Command-line interface: regenerate paper artifacts by ID.

Usage::

    python -m repro list
    python -m repro run table1 fig5
    python -m repro run fig9 --quick
    python -m repro run fig9 --quick --json --cache-dir /tmp/results
    python -m repro run all --quick
    python -m repro inspect
    python -m repro inspect 6f1f... --cache-dir /tmp/results

Each artifact prints the same rows/series the paper reports (measured next
to published values where applicable).  ``--quick`` shrinks the evaluation
scale of the accuracy-in-the-loop artifacts.  The sweep artifacts submit
their measurements through the :mod:`repro.api` service, so a repeated run
at the same scale is served from the persistent result store (inspect it
with ``repro inspect``; relocate it with ``--cache-dir``).

Every artifact routes through one request-building helper: flags that an
artifact cannot honour (e.g. ``--strategy`` for the analytic tables) are a
loud error, never silently ignored.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Any, Callable

from .api import ResilienceService, ResultStore, default_service
from .core.sweep import STRATEGIES, ExecutionOptions
from .experiments import (ablation, bittrue_validation, fig4, fig5, fig6,
                          fig9, fig10, fig11, fig12, table1, table2, table3,
                          table4)
from .experiments.common import ExperimentScale

__all__ = ["main", "ARTIFACTS", "ArtifactSpec", "RunContext"]


@dataclass(frozen=True)
class RunContext:
    """Everything a CLI artifact runner may consume, built in one place."""

    quick: bool
    scale: ExperimentScale
    service: ResilienceService


@dataclass(frozen=True)
class ArtifactSpec:
    """One artifact registry entry.

    ``sweeps`` declares whether the artifact runs resilience sweeps (and
    therefore honours ``--strategy``/``--workers``/``--no-shared-votes``
    via its :class:`ExperimentScale`); naming a non-sweep artifact
    together with those flags errors instead of silently dropping them.
    """

    description: str
    runner: Callable[[RunContext], Any]
    sweeps: bool = False


#: artifact id -> spec; every runner takes the shared RunContext.
ARTIFACTS: dict[str, ArtifactSpec] = {
    "table1": ArtifactSpec("DeepCaps op counts + unit energies",
                           lambda ctx: table1.run()),
    "fig4": ArtifactSpec("energy breakdown by op type",
                         lambda ctx: fig4.run()),
    "fig5": ArtifactSpec("Acc/XM/XA/XAM optimisation potential",
                         lambda ctx: fig5.run()),
    "fig6": ArtifactSpec("multiplier error profiles + Gaussian fits",
                         lambda ctx: fig6.run(
                             samples=20_000 if ctx.quick else 100_000)),
    "table2": ArtifactSpec("clean benchmark accuracies",
                           lambda ctx: table2.run()),
    "table3": ArtifactSpec("operation grouping (group extraction)",
                           lambda ctx: table3.run()),
    "fig9": ArtifactSpec("group-wise resilience, DeepCaps/CIFAR-10",
                         lambda ctx: fig9.run(scale=ctx.scale,
                                              service=ctx.service),
                         sweeps=True),
    "fig10": ArtifactSpec("layer-wise resilience of non-resilient groups",
                          lambda ctx: fig10.run(scale=ctx.scale,
                                                service=ctx.service),
                          sweeps=True),
    "fig11": ArtifactSpec("conv-input distributions",
                          lambda ctx: fig11.run(
                              num_images=8 if ctx.quick else 32)),
    "table4": ArtifactSpec("component power/area/NA/NM",
                           lambda ctx: table4.run(
                               num_images=8 if ctx.quick else 16,
                               samples=20_000 if ctx.quick else 50_000)),
    "fig12": ArtifactSpec("group-wise resilience, other benchmarks",
                          lambda ctx: fig12.run(scale=ctx.scale,
                                                service=ctx.service),
                          sweeps=True),
    "x1": ArtifactSpec("bit-true validation of the noise model",
                       lambda ctx: bittrue_validation.run(
                           eval_samples=32 if ctx.quick else 64)),
    "x2": ArtifactSpec("routing-iteration ablation",
                       lambda ctx: ablation.run_routing_ablation(
                           scale=ctx.scale, service=ctx.service),
                       sweeps=True),
    "x3": ArtifactSpec("biased-noise (NA) sweep",
                       lambda ctx: ablation.run_noise_average_sweep(
                           scale=ctx.scale, service=ctx.service),
                       sweeps=True),
    "x4": ArtifactSpec("quantisation word-length sweep",
                       lambda ctx: ablation.run_quantization_sweep(
                           scale=ctx.scale, service=ctx.service),
                       sweeps=True),
}


def _build_context(args) -> RunContext:
    """The one request-building helper every artifact runs through."""
    execution = ExecutionOptions(strategy=args.strategy,
                                 workers=args.workers,
                                 shared_votes=not args.no_shared_votes)
    scale = ExperimentScale(execution=execution)
    if args.quick:
        scale = scale.quick()
    if args.cache_dir is not None:
        service = ResilienceService(cache_dir=args.cache_dir)
    else:
        service = default_service()
    return RunContext(quick=args.quick, scale=scale, service=service)


def _sweep_flags_given(args) -> list[str]:
    flags = []
    if args.strategy != "auto":
        flags.append("--strategy")
    if args.workers:
        flags.append("--workers")
    if args.no_shared_votes:
        flags.append("--no-shared-votes")
    return flags


def _result_payload(name: str, result) -> dict:
    """Machine-readable dump of one artifact result (``--json``)."""
    payload: dict[str, Any] = {"artifact": name,
                               "description": ARTIFACTS[name].description}
    rows = getattr(result, "rows", None)
    if callable(rows):
        payload["rows"] = [list(row) for row in rows()]
    else:
        payload["text"] = result.format_text()
    return payload


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ReD-CaNe (DATE 2020) reproduction — regenerate paper "
                    "tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available artifacts")
    run = sub.add_parser("run", help="regenerate one or more artifacts")
    run.add_argument("artifacts", nargs="+",
                     help="artifact ids (see 'list'), or 'all'")
    run.add_argument("--quick", action="store_true",
                     help="reduced evaluation scale")
    run.add_argument("--strategy", choices=list(STRATEGIES), default="auto",
                     help="resilience-sweep execution strategy "
                          "(see repro.core.sweep)")
    run.add_argument("--workers", type=int, default=0,
                     help="fan sweep targets across this many processes")
    run.add_argument("--no-shared-votes", action="store_true",
                     help="disable the shared-votes routing fast path for "
                          "routing-resumed sweep targets")
    run.add_argument("--cache-dir", default=None,
                     help="result-store directory (default: "
                          ".artifacts/results, or $REPRO_RESULT_DIR)")
    run.add_argument("--json", action="store_true",
                     help="emit machine-readable JSON instead of tables")
    inspect = sub.add_parser(
        "inspect", help="list or dump stored analysis results")
    inspect.add_argument("key", nargs="?", default=None,
                         help="store-key prefix to dump in full (omit to "
                              "list all entries)")
    inspect.add_argument("--cache-dir", default=None,
                         help="result-store directory to inspect")
    return parser


def _run(args) -> int:
    requested = list(ARTIFACTS) if "all" in args.artifacts else args.artifacts
    unknown = [name for name in requested if name not in ARTIFACTS]
    if unknown:
        print(f"unknown artifact(s): {', '.join(unknown)}; "
              f"available: {', '.join(ARTIFACTS)}", file=sys.stderr)
        return 2
    # Loud-flag contract: sweep flags must apply to every *named*
    # artifact ('all' applies them wherever they are meaningful).
    sweep_flags = _sweep_flags_given(args)
    if sweep_flags and "all" not in args.artifacts:
        rejected = [name for name in requested if not ARTIFACTS[name].sweeps]
        if rejected:
            print(f"artifact(s) {', '.join(rejected)} run no resilience "
                  f"sweeps; {', '.join(sweep_flags)} would be ignored "
                  f"(drop the flag or the artifact)", file=sys.stderr)
            return 2
    context = _build_context(args)
    payloads = []
    for name in requested:
        result = ARTIFACTS[name].runner(context)
        if args.json:
            payloads.append(_result_payload(name, result))
        else:
            print(result.format_text())
            print()
    if args.json:
        print(json.dumps(payloads, indent=2))
    return 0


def _inspect(args) -> int:
    store = ResultStore(args.cache_dir)
    if args.key is not None:
        matches = [key for key in store.keys() if key.startswith(args.key)]
        if not matches:
            print(f"no stored result matches key prefix {args.key!r} "
                  f"in {store.root}", file=sys.stderr)
            return 2
        for key in matches:
            with open(store.path_for(key)) as stream:
                print(stream.read())
        return 0
    entries = store.entries()
    if not entries:
        print(f"result store {store.root} is empty")
        return 0
    print(f"result store {store.root} — {len(entries)} entr"
          f"{'y' if len(entries) == 1 else 'ies'}")
    header = (f"{'key':44s}  {'model':28s}  {'noise':12s}  "
              f"{'targets':>7s}  {'points':>6s}  {'created (UTC)':19s}")
    print(header)
    print("-" * len(header))
    for entry in entries:
        created = datetime.fromtimestamp(
            entry.created, tz=timezone.utc).strftime("%Y-%m-%d %H:%M:%S")
        print(f"{entry.key:44s}  {entry.model:28s}  {entry.noise:12s}  "
              f"{entry.targets:7d}  {entry.nm_values:6d}  {created}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in ARTIFACTS)
        for name, spec in ARTIFACTS.items():
            print(f"{name.ljust(width)}  {spec.description}")
        return 0
    if args.command == "inspect":
        return _inspect(args)
    return _run(args)


if __name__ == "__main__":
    sys.exit(main())
