"""Command-line interface: regenerate paper artifacts by ID.

Usage::

    python -m repro list
    python -m repro run table1 fig5
    python -m repro run fig9 --quick
    python -m repro run fig9 --quick --json --cache-dir /tmp/results
    python -m repro run fig12 --quick --backend threads --max-parallel 4
    python -m repro run fig10 --quick --backend procpool --progress
    python -m repro run all --quick
    python -m repro serve --port 8035 --queue-limit 64
    python -m repro worker --listen 127.0.0.1:9035
    python -m repro run fig9 --quick --backend remote-pool --worker 127.0.0.1:9035
    python -m repro coordinate --node http://127.0.0.1:8035 --node http://127.0.0.1:8036
    python -m repro run fig9 --quick --remote http://127.0.0.1:8035
    python -m repro run fig9 --quick --remote http://127.0.0.1:8035 --progress
    python -m repro inspect
    python -m repro inspect 6f1f... --cache-dir /tmp/results
    python -m repro gc --older-than 30d
    python -m repro lint
    python -m repro lint src/repro --format json

Each artifact prints the same rows/series the paper reports (measured next
to published values where applicable).  ``--quick`` shrinks the evaluation
scale of the accuracy-in-the-loop artifacts.  The sweep artifacts submit
their measurements through the :mod:`repro.api` service, so a repeated run
at the same scale is served from the persistent result store (inspect it
with ``repro inspect``; reclaim it with ``repro gc``; relocate it with
``--cache-dir``).  ``--backend``/``--max-parallel`` choose where the
measurements execute (see ``repro.api.backends``); ``repro serve`` exposes
the same service over HTTP and ``--remote URL`` turns ``run`` into a thin
client of such a daemon.

Every artifact routes through one request-building helper: flags that an
artifact cannot honour (e.g. ``--strategy`` for the analytic tables, or
``--cache-dir`` together with ``--remote``) are a loud error, never
silently ignored.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Any, Callable

from .api import ResilienceService, ResultStore, default_service
from .api.backends import BACKEND_NAMES
from .api.store import LAYOUT_NAMES
from .core.sweep import STRATEGIES, ExecutionOptions
from .experiments import (ablation, bittrue_validation, fig4, fig5, fig6,
                          fig9, fig10, fig11, fig12, table1, table2, table3,
                          table4)
from .experiments.common import ExperimentScale

__all__ = ["main", "ARTIFACTS", "ArtifactSpec", "RunContext"]


@dataclass(frozen=True)
class RunContext:
    """Everything a CLI artifact runner may consume, built in one place.

    ``service`` is a local :class:`~repro.api.ResilienceService` or (with
    ``--remote``) a :class:`~repro.api.RemoteService`; the sweep
    artifacts only use the shared submit/run verbs, so they cannot tell
    the difference.  ``progress`` is ``None`` or the ``--progress``
    event printer handed to the streaming artifacts.
    """

    quick: bool
    scale: ExperimentScale
    service: object
    progress: object = None


@dataclass(frozen=True)
class ArtifactSpec:
    """One artifact registry entry.

    ``sweeps`` declares whether the artifact runs resilience sweeps (and
    therefore honours ``--strategy``/``--workers``/``--no-shared-votes``/
    ``--backend``/``--max-parallel``/``--remote`` via its
    :class:`ExperimentScale` and service); naming a non-sweep artifact
    together with those flags errors instead of silently dropping them.
    ``remote_ok=False`` marks sweep artifacts that must touch the model
    object in-process (the X2 ablation mutates routing depth) and
    therefore reject ``--remote`` up front rather than crashing mid-run.
    ``streams=True`` marks the artifacts whose submissions shard and
    stream lifecycle events (fig9/fig10/fig12); only they honour
    ``--progress`` — naming any other artifact with it errors loudly at
    validation time.
    """

    description: str
    runner: Callable[[RunContext], Any]
    sweeps: bool = False
    remote_ok: bool = True
    streams: bool = False


#: artifact id -> spec; every runner takes the shared RunContext.
ARTIFACTS: dict[str, ArtifactSpec] = {
    "table1": ArtifactSpec("DeepCaps op counts + unit energies",
                           lambda ctx: table1.run()),
    "fig4": ArtifactSpec("energy breakdown by op type",
                         lambda ctx: fig4.run()),
    "fig5": ArtifactSpec("Acc/XM/XA/XAM optimisation potential",
                         lambda ctx: fig5.run()),
    "fig6": ArtifactSpec("multiplier error profiles + Gaussian fits",
                         lambda ctx: fig6.run(
                             samples=20_000 if ctx.quick else 100_000)),
    "table2": ArtifactSpec("clean benchmark accuracies",
                           lambda ctx: table2.run()),
    "table3": ArtifactSpec("operation grouping (group extraction)",
                           lambda ctx: table3.run()),
    "fig9": ArtifactSpec("group-wise resilience, DeepCaps/CIFAR-10",
                         lambda ctx: fig9.run(scale=ctx.scale,
                                              service=ctx.service,
                                              progress=ctx.progress),
                         sweeps=True, streams=True),
    "fig10": ArtifactSpec("layer-wise resilience of non-resilient groups",
                          lambda ctx: fig10.run(scale=ctx.scale,
                                                service=ctx.service,
                                                progress=ctx.progress),
                          sweeps=True, streams=True),
    "fig11": ArtifactSpec("conv-input distributions",
                          lambda ctx: fig11.run(
                              num_images=8 if ctx.quick else 32)),
    "table4": ArtifactSpec("component power/area/NA/NM",
                           lambda ctx: table4.run(
                               num_images=8 if ctx.quick else 16,
                               samples=20_000 if ctx.quick else 50_000)),
    "fig12": ArtifactSpec("group-wise resilience, other benchmarks",
                          lambda ctx: fig12.run(scale=ctx.scale,
                                                service=ctx.service,
                                                progress=ctx.progress),
                          sweeps=True, streams=True),
    "x1": ArtifactSpec("bit-true validation of the noise model",
                       lambda ctx: bittrue_validation.run(
                           eval_samples=32 if ctx.quick else 64)),
    "x2": ArtifactSpec("routing-iteration ablation",
                       lambda ctx: ablation.run_routing_ablation(
                           scale=ctx.scale, service=ctx.service),
                       sweeps=True, remote_ok=False),
    "x3": ArtifactSpec("biased-noise (NA) sweep",
                       lambda ctx: ablation.run_noise_average_sweep(
                           scale=ctx.scale, service=ctx.service),
                       sweeps=True),
    "x4": ArtifactSpec("quantisation word-length sweep",
                       lambda ctx: ablation.run_quantization_sweep(
                           scale=ctx.scale, service=ctx.service),
                       sweeps=True),
}


def _build_service(args):
    """The service behind this invocation: local, custom-store, or remote."""
    if getattr(args, "remote", None) is not None:
        from .api.server import RemoteService
        return RemoteService(args.remote,
                             client_id=getattr(args, "client_id", None))
    if args.cache_dir is not None or args.backend != "inline" \
            or args.max_parallel is not None \
            or args.store_layout != "local" or args.worker:
        return ResilienceService(cache_dir=args.cache_dir,
                                 store_layout=args.store_layout,
                                 backend=args.backend,
                                 max_parallel=args.max_parallel,
                                 workers=args.worker or None)
    return default_service()


def _progress_printer(stream=None):
    """The ``--progress`` event renderer: one stderr line per event.

    Shard-level lines show merged-so-far coverage from the event's
    embedded partial payload, so an operator watching a long fig10 run
    sees curves accumulating, not just a counter.
    """

    def emit(event) -> None:
        out = stream if stream is not None else sys.stderr
        job = event.job[:12]
        payload = event.payload
        if event.kind == "shard_done":
            targets = ", ".join(
                group if layer is None else f"{group}@{layer}"
                for group, layer in payload.get("targets", []))
            line = (f"[{job}] shard {payload.get('shards_done', '?')}/"
                    f"{payload.get('shards_total', '?')} done ({targets}")
            partial = payload.get("partial")
            if partial is not None:
                # Absent when a newer shard_done superseded this event's
                # snapshot before we read it (log compaction) — the next
                # line carries the fresher cumulative count anyway.
                points = sum(len(curve.get("points", []))
                             for curve in partial.get("curves", []))
                line += f"; {points} points so far"
            out.write(line + ")\n")
        elif event.kind == "shard_retry":
            out.write(f"[{job}] shard {payload.get('shard', '?')} attempt "
                      f"{payload.get('attempt', '?')}/"
                      f"{payload.get('max_retries', '?')} failed; "
                      f"retrying in {payload.get('delay_seconds', 0.0):.2f}s"
                      f" ({payload.get('error', 'unknown error')})\n")
        elif event.kind == "preempted":
            out.write(f"[{job}] shard {payload.get('shard', '?')} preempted "
                      f"({payload.get('points_parked', 0)} points parked; "
                      f"remainder requeued): "
                      f"{payload.get('reason', 'fair-scheduler preemption')}"
                      f"\n")
        elif event.kind == "degraded":
            out.write(f"[{job}] DEGRADED: execution pool collapsed "
                      f"({payload.get('infrastructure_failures', '?')} "
                      f"infrastructure failures); remaining shards run "
                      f"in-process\n")
        elif event.kind in ("queued", "started", "done", "cancelled",
                            "error"):
            detail = ""
            if event.kind == "done":
                if payload.get("from_cache"):
                    detail = " (store hit)"
                elif "elapsed_seconds" in payload:
                    detail = f" in {payload['elapsed_seconds']:.1f}s"
            elif event.kind == "error":
                detail = f": {payload.get('message', '')}"
            out.write(f"[{job}] {event.kind}{detail}\n")
        out.flush()

    return emit


def _build_context(args) -> RunContext:
    """The one request-building helper every artifact runs through."""
    resilience = {}
    if args.max_retries is not None:
        resilience["max_retries"] = args.max_retries
    if args.shard_timeout is not None:
        resilience["shard_timeout"] = args.shard_timeout
    if args.client_id is not None:
        resilience["client_id"] = args.client_id
    execution = ExecutionOptions(strategy=args.strategy,
                                 workers=args.workers,
                                 shared_votes=not args.no_shared_votes,
                                 **resilience)
    scale = ExperimentScale(execution=execution)
    if args.quick:
        scale = scale.quick()
    return RunContext(quick=args.quick, scale=scale,
                      service=_build_service(args),
                      progress=_progress_printer() if args.progress
                      else None)


def _sweep_flags_given(args) -> list[str]:
    flags = []
    if args.strategy != "auto":
        flags.append("--strategy")
    if args.workers:
        flags.append("--workers")
    if args.no_shared_votes:
        flags.append("--no-shared-votes")
    if args.max_retries is not None:
        flags.append("--max-retries")
    if args.shard_timeout is not None:
        flags.append("--shard-timeout")
    if args.client_id is not None:
        flags.append("--client-id")
    if args.backend != "inline":
        flags.append("--backend")
    if args.max_parallel is not None:
        flags.append("--max-parallel")
    if args.worker:
        flags.append("--worker")
    if args.remote is not None:
        flags.append("--remote")
    if args.progress:
        flags.append("--progress")
    return flags


def _flag_conflicts(args) -> str | None:
    """Invalid flag combinations (loud, mirroring the sweep-flag rule)."""
    if args.remote is not None:
        local_only = [flag for flag, given in (
            ("--cache-dir", args.cache_dir is not None),
            ("--store-layout", args.store_layout != "local"),
            ("--backend", args.backend != "inline"),
            ("--max-parallel", args.max_parallel is not None),
            ("--worker", bool(args.worker))) if given]
        if local_only:
            return (f"{', '.join(local_only)} configure the local service; "
                    f"with --remote the server owns its store and backend "
                    f"(drop the flag or configure the server)")
    if args.max_parallel is not None and args.backend == "inline":
        return ("--max-parallel needs a parallel backend; add "
                "--backend threads or --backend subprocess")
    return _worker_flag_conflict(args)


def _worker_flag_conflict(args) -> str | None:
    """``--worker`` and ``--backend remote-pool`` travel together."""
    if args.worker and args.backend != "remote-pool":
        return ("--worker names remote agents for the remote-pool "
                "backend; add --backend remote-pool (or drop the flag)")
    if args.backend == "remote-pool" and not args.worker:
        return ("--backend remote-pool needs at least one --worker "
                "HOST:PORT (start agents with 'repro worker --listen')")
    return None


def _remote_incapable(args, requested: list[str]) -> str | None:
    """Requested artifacts that cannot run against a remote service."""
    if args.remote is None:
        return None
    rejected = [name for name in requested
                if not ARTIFACTS[name].remote_ok]
    if not rejected:
        return None
    return (f"artifact(s) {', '.join(rejected)} need in-process model "
            f"access (routing-depth mutation) and cannot run against "
            f"--remote; drop the flag or the artifact")


def _progress_incapable(args, requested: list[str]) -> str | None:
    """Requested artifacts that cannot stream shard progress."""
    if not args.progress or "all" in args.artifacts:
        return None
    rejected = [name for name in requested if not ARTIFACTS[name].streams]
    if not rejected:
        return None
    streaming = ", ".join(name for name, spec in ARTIFACTS.items()
                          if spec.streams)
    return (f"artifact(s) {', '.join(rejected)} do not stream per-shard "
            f"events; --progress applies to the sharding artifacts "
            f"({streaming}) — drop the flag or the artifact")


def _result_payload(name: str, result) -> dict:
    """Machine-readable dump of one artifact result (``--json``)."""
    payload: dict[str, Any] = {"artifact": name,
                               "description": ARTIFACTS[name].description}
    rows = getattr(result, "rows", None)
    if callable(rows):
        payload["rows"] = [list(row) for row in rows()]
    else:
        payload["text"] = result.format_text()
    return payload


def _add_store_flag(parser, help_suffix: str = "") -> None:
    parser.add_argument("--cache-dir", default=None,
                        help="result-store directory (default: "
                             ".artifacts/results, or $REPRO_RESULT_DIR)"
                             + help_suffix)
    parser.add_argument("--store-layout", choices=list(LAYOUT_NAMES),
                        default="local",
                        help="result-store on-disk layout: 'local' (flat "
                             "single-node directory) or 'shared' "
                             "(fanned-out, fsync'd layout safe for "
                             "several nodes over one filesystem)")


def _add_backend_flags(parser) -> None:
    parser.add_argument("--backend", choices=list(BACKEND_NAMES),
                        default="inline",
                        help="execution backend for analysis requests "
                             "(see repro.api.backends)")
    parser.add_argument("--max-parallel", type=int, default=None,
                        help="max concurrent shard executions "
                             "(threads/subprocess backends only)")
    parser.add_argument("--worker", action="append", default=None,
                        metavar="HOST:PORT",
                        help="remote worker agent for --backend "
                             "remote-pool (repeatable; start agents "
                             "with 'repro worker --listen HOST:PORT')")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ReD-CaNe (DATE 2020) reproduction — regenerate paper "
                    "tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available artifacts")
    run = sub.add_parser("run", help="regenerate one or more artifacts")
    run.add_argument("artifacts", nargs="+",
                     help="artifact ids (see 'list'), or 'all'")
    run.add_argument("--quick", action="store_true",
                     help="reduced evaluation scale")
    run.add_argument("--strategy", choices=list(STRATEGIES), default="auto",
                     help="resilience-sweep execution strategy "
                          "(see repro.core.sweep)")
    run.add_argument("--workers", type=int, default=0,
                     help="fan sweep targets across this many processes")
    run.add_argument("--no-shared-votes", action="store_true",
                     help="disable the shared-votes routing fast path for "
                          "routing-resumed sweep targets")
    run.add_argument("--max-retries", type=int, default=None,
                     help="retry a failed shard this many times with "
                          "exponential backoff before poisoning it "
                          "(default: 2; see repro.api.resilience)")
    run.add_argument("--shard-timeout", type=float, default=None,
                     help="wall-clock deadline in seconds per shard "
                          "attempt; hung workers are killed and the "
                          "shard retried (default: no deadline)")
    run.add_argument("--client-id", default=None, metavar="NAME",
                     help="tenant name for the fair scheduler; rides "
                          "requests as options.client_id (and the "
                          "X-Repro-Client header with --remote) — never "
                          "changes results or cache keys")
    _add_backend_flags(run)
    run.add_argument("--remote", default=None, metavar="URL",
                     help="submit sweep requests to a running "
                          "'repro serve' daemon instead of measuring "
                          "in-process")
    run.add_argument("--progress", action="store_true",
                     help="render live per-shard progress from the "
                          "analysis event stream (sharding artifacts "
                          "only; works locally and with --remote)")
    _add_store_flag(run)
    run.add_argument("--json", action="store_true",
                     help="emit machine-readable JSON instead of tables")
    serve = sub.add_parser(
        "serve", help="serve the analysis API over HTTP (see docs/api.md)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8035,
                       help="bind port (0 picks a free one)")
    serve.add_argument("--queue-limit", type=int, default=None,
                       help="bound on queued shard executions; a "
                            "saturated server answers new submissions "
                            "with 429 + Retry-After instead of queuing "
                            "unboundedly")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       help="seconds SIGTERM waits for in-flight work "
                            "to finish before the server stops "
                            "(default: 30)")
    serve.add_argument("--degrade-threshold", type=int, default=None,
                       help="consecutive infrastructure failures before "
                            "the service latches degraded and runs "
                            "remaining shards in-process (default: 3)")
    serve.add_argument("--tenant-weight", action="append", default=None,
                       metavar="NAME=W",
                       help="deficit-round-robin share for one tenant "
                            "(repeatable; e.g. --tenant-weight batch=1 "
                            "--tenant-weight triage=4; unlisted tenants "
                            "weigh 1)")
    serve.add_argument("--preempt-after", type=float, default=None,
                       metavar="SECONDS",
                       help="preempt a running lower-priority shard when "
                            "a tenant starves this long on a saturated "
                            "queue (parks at the next sweep checkpoint; "
                            "default: preemption off)")
    _add_backend_flags(serve)
    _add_store_flag(serve)
    worker = sub.add_parser(
        "worker", help="serve the framed shard-measurement protocol over "
                       "TCP for remote-pool clients (see docs/api.md)")
    worker.add_argument("--listen", default="127.0.0.1:0",
                        metavar="HOST:PORT",
                        help="bind address (default 127.0.0.1:0; port 0 "
                             "picks a free one, printed at startup)")
    coordinate = sub.add_parser(
        "coordinate", help="front several 'repro serve' nodes behind one "
                           "consistent-hash routing endpoint "
                           "(see docs/api.md)")
    coordinate.add_argument("--node", action="append", required=True,
                            metavar="URL",
                            help="base URL of one fleet node "
                                 "(repeatable; e.g. "
                                 "--node http://127.0.0.1:8035)")
    coordinate.add_argument("--host", default="127.0.0.1")
    coordinate.add_argument("--port", type=int, default=8036,
                            help="bind port (0 picks a free one)")
    inspect = sub.add_parser(
        "inspect", help="list or dump stored analysis results")
    inspect.add_argument("key", nargs="?", default=None,
                         help="store-key prefix to dump in full (omit to "
                              "list all entries)")
    _add_store_flag(inspect)
    lint = sub.add_parser(
        "lint", help="run the invariant lint suite (lock order, "
                     "blocking-under-lock, determinism, wire schema, "
                     "exception contract, resource lifecycle, event "
                     "protocol; see docs/devtools.md)")
    lint.add_argument("paths", nargs="*", default=None,
                      help="files or directories to scan (default: the "
                           "installed repro package source)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text",
                      help="finding output format (default: text; "
                           "sarif is SARIF 2.1.0 for CI annotation)")
    lint.add_argument("--changed", nargs="?", const="", default=None,
                      metavar="BASE",
                      help="only report findings in files changed vs "
                           "git (default base: the merge base with "
                           "origin/main; analysis still covers the "
                           "full tree)")
    lint.add_argument("--rules", default=None, metavar="PREFIXES",
                      help="comma-separated rule-id prefixes to run "
                           "(e.g. 'lock,schema'; default: all rules)")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="grandfather baseline file (default: "
                           "lint_baseline.json discovered above the "
                           "scan root)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="report baselined findings too")
    lint.add_argument("--write-baseline", action="store_true",
                      help="record current findings as the grandfather "
                           "baseline instead of failing on them")
    lint.add_argument("--schema-manifest", default=None, metavar="FILE",
                      help="wire-schema field manifest (default: the "
                           "checked-in repro/devtools/"
                           "schema_manifest.json)")
    lint.add_argument("--update-schema-manifest", action="store_true",
                      help="re-pin the versioned payload field sets "
                           "after an intentional SCHEMA_VERSION bump")
    lint.add_argument("--update-event-manifest", action="store_true",
                      help="re-pin the event-protocol vocabulary "
                           "(EVENT_KINDS/TERMINAL_EVENTS) after an "
                           "intentional lifecycle change")
    gc = sub.add_parser(
        "gc", help="reclaim result-store disk (stale/orphaned entries; "
                   "--older-than/--all widen the sweep)")
    gc.add_argument("--older-than", default=None, metavar="AGE",
                    help="also remove entries older than AGE "
                         "(e.g. 45m, 12h, 30d, or plain seconds)")
    gc.add_argument("--all", action="store_true",
                    help="remove every entry (after intentional numerics "
                         "changes — old entries key on inputs, not code)")
    _add_store_flag(gc)
    return parser


def _run(args) -> int:
    requested = list(ARTIFACTS) if "all" in args.artifacts else args.artifacts
    unknown = [name for name in requested if name not in ARTIFACTS]
    if unknown:
        print(f"unknown artifact(s): {', '.join(unknown)}; "
              f"available: {', '.join(ARTIFACTS)}", file=sys.stderr)
        return 2
    for conflict in (_flag_conflicts(args),
                     _remote_incapable(args, requested),
                     _progress_incapable(args, requested)):
        if conflict is not None:
            print(conflict, file=sys.stderr)
            return 2
    # Loud-flag contract: sweep flags must apply to every *named*
    # artifact ('all' applies them wherever they are meaningful).
    sweep_flags = _sweep_flags_given(args)
    if sweep_flags and "all" not in args.artifacts:
        rejected = [name for name in requested if not ARTIFACTS[name].sweeps]
        if rejected:
            print(f"artifact(s) {', '.join(rejected)} run no resilience "
                  f"sweeps; {', '.join(sweep_flags)} would be ignored "
                  f"(drop the flag or the artifact)", file=sys.stderr)
            return 2
    context = _build_context(args)
    payloads = []
    for name in requested:
        result = ARTIFACTS[name].runner(context)
        if args.json:
            payloads.append(_result_payload(name, result))
        else:
            print(result.format_text())
            print()
    if args.json:
        print(json.dumps(payloads, indent=2))
    return 0


def _parse_tenant_weights(pairs) -> dict | None:
    """``["batch=1", "triage=4"]`` -> ``{"batch": 1.0, "triage": 4.0}``."""
    if not pairs:
        return None
    weights = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise ValueError(f"invalid --tenant-weight {pair!r}; "
                             f"expected NAME=WEIGHT (e.g. triage=4)")
        try:
            weight = float(value)
        except ValueError:
            raise ValueError(f"invalid --tenant-weight {pair!r}: "
                             f"{value!r} is not a number") from None
        if weight <= 0:
            raise ValueError(f"invalid --tenant-weight {pair!r}: "
                             f"weight must be positive")
        weights[name] = weight
    return weights


def _serve(args) -> int:
    import signal
    import threading

    from .api.server import AnalysisServer
    conflict = _worker_flag_conflict(args)
    if conflict is not None:
        print(conflict, file=sys.stderr)
        return 2
    try:
        tenant_weights = _parse_tenant_weights(args.tenant_weight)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    service = ResilienceService(cache_dir=args.cache_dir,
                                store_layout=args.store_layout,
                                backend=args.backend,
                                max_parallel=args.max_parallel,
                                workers=args.worker or None,
                                queue_limit=args.queue_limit,
                                degrade_threshold=args.degrade_threshold,
                                tenant_weights=tenant_weights,
                                starvation_threshold=args.preempt_after)
    server = AnalysisServer(service, host=args.host, port=args.port)

    def _graceful_drain(signum, frame):
        # serve_forever() runs on this (the main) thread, so the handler
        # must not call server.shutdown() itself — that join deadlocks.
        # Flip the drain flag here (new submissions get 503) and hand
        # the wait-then-stop to a helper thread.
        print("SIGTERM: draining — no new submissions; in-flight shards "
              f"get {args.drain_timeout:.0f}s to finish", file=sys.stderr)
        server.begin_drain()

        def _finish() -> None:
            server.drain(timeout=args.drain_timeout)
            server.shutdown()

        threading.Thread(target=_finish, name="repro-serve-drain",
                         daemon=True).start()

    signal.signal(signal.SIGTERM, _graceful_drain)
    store_root = service.store.root if service.store is not None else "-"
    limit = ("unbounded" if args.queue_limit is None
             else f"limit {args.queue_limit}")
    print(f"serving analysis API on {server.address} "
          f"(backend {service.backend.name}, store {store_root}, "
          f"queue {limit}); Ctrl-C stops, SIGTERM drains")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        service.close()
    return 0


def _worker(args) -> int:
    from .api.cluster import WorkerAgent, parse_worker_address
    try:
        host, port = parse_worker_address(args.listen)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    agent = WorkerAgent(host, port, hard_exit=True)
    print(f"worker listening on {agent.address} "
          f"(framed shard protocol; point a remote-pool client at it "
          f"with --worker {agent.address}); Ctrl-C stops", flush=True)
    try:
        agent.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        agent.close()
    return 0


def _coordinate(args) -> int:
    from .api.cluster import ClusterCoordinator, CoordinatorServer
    try:
        coordinator = ClusterCoordinator(args.node)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    server = CoordinatorServer(coordinator, host=args.host, port=args.port)
    print(f"coordinating {len(args.node)} fleet node"
          f"{'' if len(args.node) == 1 else 's'} on {server.address} "
          f"({', '.join(args.node)}); Ctrl-C stops", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return 0


def _inspect(args) -> int:
    store = ResultStore(args.cache_dir, layout=args.store_layout)
    if args.key is not None:
        matches = [key for key in store.keys() if key.startswith(args.key)]
        if not matches:
            print(f"no stored result matches key prefix {args.key!r} "
                  f"in {store.root}", file=sys.stderr)
            return 2
        for key in matches:
            with open(store.path_for(key)) as stream:
                print(stream.read())
        return 0
    entries = store.entries()
    if not entries:
        print(f"result store {store.root} is empty")
        return 0
    print(f"result store {store.root} — {len(entries)} entr"
          f"{'y' if len(entries) == 1 else 'ies'}")
    header = (f"{'key':44s}  {'model':28s}  {'noise':12s}  "
              f"{'targets':>7s}  {'points':>6s}  {'created (UTC)':19s}")
    print(header)
    print("-" * len(header))
    for entry in entries:
        created = datetime.fromtimestamp(
            entry.created, tz=timezone.utc).strftime("%Y-%m-%d %H:%M:%S")
        print(f"{entry.key:44s}  {entry.model:28s}  {entry.noise:12s}  "
              f"{entry.targets:7d}  {entry.nm_values:6d}  {created}")
    return 0


#: ``--older-than`` suffixes, in seconds.
_AGE_UNITS = {"s": 1, "m": 60, "h": 3600, "d": 86400, "w": 7 * 86400}


def _parse_age(text: str) -> float:
    """``"45m"``/``"12h"``/``"30d"``/``"3600"`` -> seconds."""
    text = text.strip().lower()
    unit = 1.0
    if text and text[-1] in _AGE_UNITS:
        unit = _AGE_UNITS[text[-1]]
        text = text[:-1]
    try:
        seconds = float(text) * unit
    except ValueError:
        raise ValueError(
            f"invalid age {text!r}; use e.g. 45m, 12h, 30d, or seconds"
        ) from None
    if seconds < 0:
        raise ValueError("age must be non-negative")
    return seconds


def _gc(args) -> int:
    store = ResultStore(args.cache_dir, layout=args.store_layout)
    try:
        older_than = (None if args.older_than is None
                      else _parse_age(args.older_than))
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    report = store.gc(older_than=older_than, everything=args.all)
    print(f"result store {store.root}: {report.summary()}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in ARTIFACTS)
        for name, spec in ARTIFACTS.items():
            print(f"{name.ljust(width)}  {spec.description}")
        return 0
    if args.command == "serve":
        return _serve(args)
    if args.command == "worker":
        return _worker(args)
    if args.command == "coordinate":
        return _coordinate(args)
    if args.command == "inspect":
        return _inspect(args)
    if args.command == "gc":
        return _gc(args)
    if args.command == "lint":
        from .devtools.runner import run_cli
        return run_cli(args)
    return _run(args)


if __name__ == "__main__":
    sys.exit(main())
