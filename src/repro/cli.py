"""Command-line interface: regenerate paper artifacts by ID.

Usage::

    python -m repro list
    python -m repro run table1 fig5
    python -m repro run fig9 --quick
    python -m repro run all --quick

Each artifact prints the same rows/series the paper reports (measured next
to published values where applicable).  ``--quick`` shrinks the evaluation
scale of the accuracy-in-the-loop artifacts.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Callable

from .core.sweep import STRATEGIES
from .experiments import (ablation, bittrue_validation, fig4, fig5, fig6,
                          fig9, fig10, fig11, fig12, table1, table2, table3,
                          table4)
from .experiments.common import ExperimentScale

__all__ = ["main", "ARTIFACTS"]


def _scaled(runner: Callable, **fixed):
    def run(quick: bool, strategy: str = "auto", workers: int = 0,
            shared_votes: bool = True):
        scale = ExperimentScale.quick() if quick else ExperimentScale()
        scale = dataclasses.replace(scale, strategy=strategy, workers=workers,
                                    shared_votes=shared_votes)
        return runner(scale=scale, **fixed)
    return run


def _plain(runner: Callable, **fixed):
    def run(_quick: bool, _strategy: str = "auto", _workers: int = 0,
            _shared_votes: bool = True):
        return runner(**fixed)
    return run


#: artifact id -> (description, runner(quick) -> result with format_text()).
ARTIFACTS: dict[str, tuple[str, Callable]] = {
    "table1": ("DeepCaps op counts + unit energies", _plain(table1.run)),
    "fig4": ("energy breakdown by op type", _plain(fig4.run)),
    "fig5": ("Acc/XM/XA/XAM optimisation potential", _plain(fig5.run)),
    "fig6": ("multiplier error profiles + Gaussian fits",
             lambda quick, *_: fig6.run(samples=20_000 if quick else 100_000)),
    "table2": ("clean benchmark accuracies", _plain(table2.run)),
    "table3": ("operation grouping (group extraction)", _plain(table3.run)),
    "fig9": ("group-wise resilience, DeepCaps/CIFAR-10", _scaled(fig9.run)),
    "fig10": ("layer-wise resilience of non-resilient groups",
              _scaled(fig10.run)),
    "fig11": ("conv-input distributions",
              lambda quick, *_: fig11.run(num_images=8 if quick else 32)),
    "table4": ("component power/area/NA/NM",
               lambda quick, *_: table4.run(
                   num_images=8 if quick else 16,
                   samples=20_000 if quick else 50_000)),
    "fig12": ("group-wise resilience, other benchmarks", _scaled(fig12.run)),
    "x1": ("bit-true validation of the noise model",
           lambda quick, *_: bittrue_validation.run(
               eval_samples=32 if quick else 64)),
    "x2": ("routing-iteration ablation",
           _scaled(ablation.run_routing_ablation)),
    "x3": ("biased-noise (NA) sweep",
           _scaled(ablation.run_noise_average_sweep)),
    "x4": ("quantisation word-length sweep",
           _scaled(ablation.run_quantization_sweep)),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ReD-CaNe (DATE 2020) reproduction — regenerate paper "
                    "tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available artifacts")
    run = sub.add_parser("run", help="regenerate one or more artifacts")
    run.add_argument("artifacts", nargs="+",
                     help="artifact ids (see 'list'), or 'all'")
    run.add_argument("--quick", action="store_true",
                     help="reduced evaluation scale")
    run.add_argument("--strategy", choices=list(STRATEGIES), default="auto",
                     help="resilience-sweep execution strategy "
                          "(see repro.core.sweep)")
    run.add_argument("--workers", type=int, default=0,
                     help="fan sweep targets across this many processes")
    run.add_argument("--no-shared-votes", action="store_true",
                     help="disable the shared-votes routing fast path for "
                          "routing-resumed sweep targets")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in ARTIFACTS)
        for name, (description, _) in ARTIFACTS.items():
            print(f"{name.ljust(width)}  {description}")
        return 0

    requested = list(ARTIFACTS) if "all" in args.artifacts else args.artifacts
    unknown = [name for name in requested if name not in ARTIFACTS]
    if unknown:
        print(f"unknown artifact(s): {', '.join(unknown)}; "
              f"available: {', '.join(ARTIFACTS)}", file=sys.stderr)
        return 2
    for name in requested:
        _, runner = ARTIFACTS[name]
        result = runner(args.quick, args.strategy, args.workers,
                        not args.no_shared_votes)
        print(result.format_text())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
