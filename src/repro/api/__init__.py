"""Job-oriented analysis API: declarative requests, a futures-first
resilience service with pluggable execution backends, and a persistent
fingerprint-keyed result store.

This is the load-bearing seam between *what* a resilience question asks
(:class:`AnalysisRequest`) and *how* the sweep machinery answers it
(:class:`ResilienceService` → :class:`~repro.core.sweep.SweepEngine`),
with answers persisted content-addressed (:class:`ResultStore`) so
repeated artifact runs are cache hits and mutated models auto-invalidate.
*Where* a measurement executes is a pluggable backend
(:mod:`repro.api.backends`): ``inline`` (blocking reference), ``threads``
(cross-request parallelism), ``subprocess`` (schema-JSON workers),
``procpool`` (persistent warm workers), or ``remote-pool`` (the same
framed worker protocol over TCP to ``repro worker`` agents;
:mod:`repro.api.cluster` adds the agent, a multi-node coordinator and
shared :class:`ResultStore` layouts); large requests shard per target
(:mod:`repro.api.scheduler`) through a bounded priority queue
(:class:`ShardQueue`, :class:`QueueFull` backpressure) and merge
byte-identically.  Progress is first-class: handles stream typed
lifecycle events (:mod:`repro.api.events`), expose merged-so-far
:class:`PartialResult` snapshots, and support cooperative
:meth:`~AnalysisHandle.cancel`.  :mod:`repro.api.server` serves the same
schema over HTTP (``repro serve``) — including a chunked event stream,
cancellation and 429 backpressure — with :class:`RemoteService` as the
thin client.

Typical use::

    from repro.api import AnalysisRequest, ModelRef, default_service

    request = AnalysisRequest(
        model=ModelRef(benchmark="DeepCaps/CIFAR-10"),
        targets=[("mac_outputs", None), ("softmax", None)],
        nm_values=(0.5, 0.05, 0.005, 0.0), seed=0, eval_samples=96)
    handle = default_service().submit(request)   # AnalysisHandle
    result = handle.result()                     # or service.run(request)
    result.curve_for("mac_outputs").tolerable_nm()

Every experiment module (fig9/fig10/fig12, the X2-X4 ablations) and the
:class:`~repro.core.methodology.ReDCaNe` pipeline submits through this
layer; see ``docs/api.md`` for the schema, backends, cache layout and
migration notes.
"""

from ..core.sweep import ExecutionOptions, SweepCancelled
from .backends import (BACKEND_NAMES, BackendError, ChaosBackend,
                       ExecutionBackend, InlineBackend, ProcPoolBackend,
                       SubprocessBackend, ThreadBackend, make_backend)
from .cluster import (ClusterCoordinator, CoordinatorServer, NodeUnreachable,
                      RemotePoolBackend, WorkerAgent, parse_worker_address)
from .events import (EVENT_KINDS, TERMINAL_EVENTS, AnalysisCancelled,
                     AnalysisEvent, CancelToken, EventLog)
from .request import (NOISE_KINDS, SCHEMA_VERSION, AnalysisRequest,
                      AnalysisResult, ModelRef, PartialResult, SchemaError)
from .resilience import (AttemptRecord, Fault, FaultPlan, FaultyStore,
                         RetryPolicy, ServiceHealth, ShardPoisoned,
                         WorkerCrashed, WorkerSupervisor, WorkerTimeout)
from .scheduler import (QueueFull, ShardMismatch, ShardQueue, merge_partial,
                        merge_shards, plan_shards)
from .server import (AnalysisServer, RemoteBusy, RemoteError, RemoteHandle,
                     RemoteService, ServerDraining)
from .service import (AnalysisHandle, ResilienceService, ResolvedModel,
                      ServiceStats, ShardProgress, dataset_fingerprint,
                      default_service)
from .store import (LAYOUT_NAMES, GcReport, LocalDirLayout, ResultStore,
                    SharedFSLayout, StoreEntry, StoreLayout,
                    default_store_root, make_layout, store_key)

__all__ = [
    "SCHEMA_VERSION", "NOISE_KINDS", "SchemaError",
    "ModelRef", "AnalysisRequest", "AnalysisResult", "PartialResult",
    "ExecutionOptions",
    "EVENT_KINDS", "TERMINAL_EVENTS", "AnalysisEvent", "EventLog",
    "CancelToken", "AnalysisCancelled", "SweepCancelled",
    "BACKEND_NAMES", "BackendError", "ExecutionBackend", "InlineBackend",
    "ThreadBackend", "SubprocessBackend", "ProcPoolBackend", "ChaosBackend",
    "make_backend",
    "WorkerCrashed", "WorkerTimeout", "ShardPoisoned", "AttemptRecord",
    "RetryPolicy", "WorkerSupervisor", "ServiceHealth",
    "Fault", "FaultPlan", "FaultyStore",
    "ShardMismatch", "plan_shards", "merge_shards", "merge_partial",
    "ShardQueue", "QueueFull",
    "AnalysisServer", "RemoteService", "RemoteHandle", "RemoteError",
    "RemoteBusy", "ServerDraining",
    "AnalysisHandle", "ShardProgress",
    "ResilienceService", "ResolvedModel", "ServiceStats", "default_service",
    "dataset_fingerprint",
    "ResultStore", "StoreEntry", "GcReport", "default_store_root",
    "store_key",
    "StoreLayout", "LocalDirLayout", "SharedFSLayout", "make_layout",
    "LAYOUT_NAMES",
    "WorkerAgent", "RemotePoolBackend", "parse_worker_address",
    "ClusterCoordinator", "CoordinatorServer", "NodeUnreachable",
]
