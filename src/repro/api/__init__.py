"""Job-oriented analysis API: declarative requests, a resilience service,
and a persistent fingerprint-keyed result store.

This is the load-bearing seam between *what* a resilience question asks
(:class:`AnalysisRequest`) and *how* the sweep machinery answers it
(:class:`ResilienceService` → :class:`~repro.core.sweep.SweepEngine`),
with answers persisted content-addressed (:class:`ResultStore`) so
repeated artifact runs are cache hits and mutated models auto-invalidate.

Typical use::

    from repro.api import AnalysisRequest, ModelRef, default_service

    request = AnalysisRequest(
        model=ModelRef(benchmark="DeepCaps/CIFAR-10"),
        targets=[("mac_outputs", None), ("softmax", None)],
        nm_values=(0.5, 0.05, 0.005, 0.0), seed=0, eval_samples=96)
    result = default_service().submit(request)
    result.curve_for("mac_outputs").tolerable_nm()

Every experiment module (fig9/fig10/fig12, the X2-X4 ablations) and the
:class:`~repro.core.methodology.ReDCaNe` pipeline submits through this
layer; see ``docs/api.md`` for the schema, cache layout and migration
notes.
"""

from ..core.sweep import ExecutionOptions
from .request import (NOISE_KINDS, SCHEMA_VERSION, AnalysisRequest,
                      AnalysisResult, ModelRef, SchemaError)
from .service import (ResilienceService, ResolvedModel, ServiceStats,
                      dataset_fingerprint, default_service)
from .store import ResultStore, StoreEntry, default_store_root, store_key

__all__ = [
    "SCHEMA_VERSION", "NOISE_KINDS", "SchemaError",
    "ModelRef", "AnalysisRequest", "AnalysisResult", "ExecutionOptions",
    "ResilienceService", "ResolvedModel", "ServiceStats", "default_service",
    "dataset_fingerprint",
    "ResultStore", "StoreEntry", "default_store_root", "store_key",
]
