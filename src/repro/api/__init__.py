"""Job-oriented analysis API: declarative requests, a futures-first
resilience service with pluggable execution backends, and a persistent
fingerprint-keyed result store.

This is the load-bearing seam between *what* a resilience question asks
(:class:`AnalysisRequest`) and *how* the sweep machinery answers it
(:class:`ResilienceService` → :class:`~repro.core.sweep.SweepEngine`),
with answers persisted content-addressed (:class:`ResultStore`) so
repeated artifact runs are cache hits and mutated models auto-invalidate.
*Where* a measurement executes is a pluggable backend
(:mod:`repro.api.backends`): ``inline`` (blocking reference), ``threads``
(cross-request parallelism), or ``subprocess`` (schema-JSON workers);
large requests shard per target (:mod:`repro.api.scheduler`) and merge
byte-identically.  :mod:`repro.api.server` serves the same schema over
HTTP (``repro serve``) with :class:`RemoteService` as the thin client.

Typical use::

    from repro.api import AnalysisRequest, ModelRef, default_service

    request = AnalysisRequest(
        model=ModelRef(benchmark="DeepCaps/CIFAR-10"),
        targets=[("mac_outputs", None), ("softmax", None)],
        nm_values=(0.5, 0.05, 0.005, 0.0), seed=0, eval_samples=96)
    handle = default_service().submit(request)   # AnalysisHandle
    result = handle.result()                     # or service.run(request)
    result.curve_for("mac_outputs").tolerable_nm()

Every experiment module (fig9/fig10/fig12, the X2-X4 ablations) and the
:class:`~repro.core.methodology.ReDCaNe` pipeline submits through this
layer; see ``docs/api.md`` for the schema, backends, cache layout and
migration notes.
"""

from ..core.sweep import ExecutionOptions
from .backends import (BACKEND_NAMES, BackendError, ExecutionBackend,
                       InlineBackend, SubprocessBackend, ThreadBackend,
                       make_backend)
from .request import (NOISE_KINDS, SCHEMA_VERSION, AnalysisRequest,
                      AnalysisResult, ModelRef, SchemaError)
from .scheduler import ShardMismatch, merge_shards, plan_shards
from .server import AnalysisServer, RemoteError, RemoteHandle, RemoteService
from .service import (AnalysisHandle, ResilienceService, ResolvedModel,
                      ServiceStats, ShardProgress, dataset_fingerprint,
                      default_service)
from .store import (GcReport, ResultStore, StoreEntry, default_store_root,
                    store_key)

__all__ = [
    "SCHEMA_VERSION", "NOISE_KINDS", "SchemaError",
    "ModelRef", "AnalysisRequest", "AnalysisResult", "ExecutionOptions",
    "BACKEND_NAMES", "BackendError", "ExecutionBackend", "InlineBackend",
    "ThreadBackend", "SubprocessBackend", "make_backend",
    "ShardMismatch", "plan_shards", "merge_shards",
    "AnalysisServer", "RemoteService", "RemoteHandle", "RemoteError",
    "AnalysisHandle", "ShardProgress",
    "ResilienceService", "ResolvedModel", "ServiceStats", "default_service",
    "dataset_fingerprint",
    "ResultStore", "StoreEntry", "GcReport", "default_store_root",
    "store_key",
]
