"""Remote serving: the analysis API over HTTP, schema v1 as the wire.

``repro serve`` starts :class:`AnalysisServer` — a local daemon wrapping
one :class:`~repro.api.service.ResilienceService` — and ``repro run
--remote URL`` (or any program holding a :class:`RemoteService`) submits
:class:`~repro.api.request.AnalysisRequest` documents to it.  The wire
format is exactly the versioned JSON schema of :mod:`repro.api.request`;
nothing bespoke crosses the socket, so any HTTP client can drive the
service.

Endpoints (all JSON)::

    GET  /v1/health           {"ok", "schema", "backend", "stats", "queue"}
    POST /v1/submit[?priority=N]
                              body: AnalysisRequest  ->  {"job", "status"};
                              429 + Retry-After when the queue is full;
                              an X-Repro-Client header names the tenant
                              (stamped into options.client_id when the
                              body does not already carry one)
    GET  /v1/status/<job>     {"job", "status", "shards_*", ...}
    GET  /v1/result/<job>     AnalysisResult (202 + status while pending;
                              ?wait=SECONDS long-polls up to
                              min(SECONDS, WAIT_SLICE_SECONDS);
                              409 when the job was cancelled)
    GET  /v1/partial/<job>    PartialResult — the merged-so-far curves
    GET  /v1/events/<job>[?after=SEQ]
                              chunked ndjson stream of AnalysisEvent
                              documents; ends at the terminal event or
                              after WAIT_SLICE_SECONDS of silence
                              (resume with after=<last seq>)
    POST /v1/cancel/<job>     {"job", "cancelled", "status"}
    GET  /v1/inspect          {"root", "entries": [...]}

Job ids are the service's content-addressed store keys, so re-submitting
an identical request returns the same id (idempotent) and a finished
job's result stays retrievable across server restarts via the store.
Session refs are rejected with 400: in-memory models cannot cross the
wire — register them on an in-process service instead.

The server is a :class:`ThreadingHTTPServer`: each request runs on its
own thread, which composes with the service's thread-safe submission and
(optionally) a parallel execution backend for genuine cross-request
concurrency.  Event streams hold their handler thread for at most one
silence slice, like long-polls.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .events import AnalysisCancelled, AnalysisEvent
from .request import (SCHEMA_VERSION, AnalysisRequest, AnalysisResult,
                      PartialResult)
from .scheduler import QueueFull
from .service import AnalysisHandle, ResilienceService, _cached_handle

__all__ = ["AnalysisServer", "RemoteService", "RemoteHandle", "RemoteError",
           "RemoteBusy", "ServerDraining"]

#: Seconds one ?wait=1 long-poll (or one silent event-stream slice)
#: blocks before yielding the handler thread back (clients re-poll or
#: reconnect; bounded so a dead client cannot pin a thread).
WAIT_SLICE_SECONDS = 30.0


class ServerDraining(RuntimeError):
    """The server is draining (SIGTERM) and admits no new submissions.

    Served as HTTP 503 + ``Retry-After``: running shards finish, event
    logs flush, but new work must go elsewhere (or come back after the
    restart).
    """


class RemoteError(RuntimeError):
    """The server rejected a request or returned a malformed response."""


class RemoteBusy(RemoteError):
    """The server refused a submission with 429 (queue full).

    ``retry_after`` carries the server's backoff hint in seconds (from
    the ``Retry-After`` header); :meth:`RemoteService.submit` honours it
    automatically for ``busy_retries`` attempts before surfacing this.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class AnalysisServer:
    """Serve one :class:`ResilienceService` over HTTP (see module doc).

    Parameters
    ----------
    service:
        The service to expose; its backend decides execution parallelism.
    host / port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`).
    """

    def __init__(self, service: ResilienceService, *,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self._jobs: dict[str, AnalysisHandle] = {}
        self._jobs_lock = threading.Lock()
        self._draining = False
        self._closed = False
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    # ---------------------------------------------------------------- control
    @property
    def address(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "AnalysisServer":
        """Serve on a background thread; returns self (for tests/embedding)."""
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop serving (idempotent — drain threads and ``finally``
        blocks may both call it)."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    # ------------------------------------------------------- graceful drain
    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop admitting new submissions (``repro serve``'s SIGTERM).

        Read endpoints keep answering — clients holding job ids can
        still collect results and event streams while running shards
        finish; new ``/v1/submit`` requests get 503 + ``Retry-After``.
        """
        self._draining = True

    def drain(self, timeout: float | None = None) -> bool:
        """Block until in-flight work settles (or ``timeout`` runs out).

        "Settled" means the dispatch queue is empty with nothing
        running and every tracked handle has resolved — at which point
        every event log carries its terminal event (flushed: logs live
        in memory and streams replay from history, so a resolved job's
        history is durable for as long as the process lives).  Returns
        whether the server fully drained.
        """
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            queue = self.service.queue_snapshot()
            with self._jobs_lock:
                handles = list(self._jobs.values())
            settled = (queue["queued"] == 0 and queue["running"] == 0
                       and all(handle.done() for handle in handles))
            if settled:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.1)

    # ---------------------------------------------------------------- actions
    def submit_payload(self, payload: dict, priority: int = 0,
                       client_id: str | None = None) -> dict:
        if self._draining:
            raise ServerDraining(
                "server is draining (shutdown requested): no new "
                "submissions are admitted; running jobs will finish")
        if client_id is not None:
            # The X-Repro-Client header names the tenant; an explicit
            # options.client_id in the body wins over it.
            options = dict(payload.get("options") or {})
            if options.get("client_id") is None:
                options["client_id"] = client_id
                payload = {**payload, "options": options}
        request = AnalysisRequest.from_payload(payload)
        if request.model.session is not None:
            raise ValueError(
                f"session ref {request.model.key!r} cannot be served "
                f"remotely: in-memory models do not cross the wire (use "
                f"benchmark=/preset= refs)")
        handle = self.service.submit(request, priority=priority)
        with self._jobs_lock:
            self._jobs[handle.key] = handle
        return {"job": handle.key, "status": handle.status()}

    def handle_for(self, job: str) -> AnalysisHandle | None:
        with self._jobs_lock:
            handle = self._jobs.get(job)
        if handle is not None:
            return handle
        # A finished job from a previous server life: the store still
        # holds it (job ids ARE store keys), so answer straight from the
        # stored document — resubmitting would force model resolution
        # (weights load, or a full training run on a cold zoo cache)
        # just to rebuild a handle for a result we already have.
        if self.service.store is not None:
            cached = self.service.store.get(job)
            if cached is not None:
                handle = _cached_handle(cached.request, job, cached)
                with self._jobs_lock:
                    self._jobs.setdefault(job, handle)
                return self._jobs[job]
        return None

    def status_payload(self, handle: AnalysisHandle) -> dict:
        status = handle.status()
        payload = {"job": handle.key, "status": status}
        payload.update(handle.progress)
        if status in ("error", "cancelled"):
            payload["error"] = str(handle.exception())
        return payload

    def cancel_payload(self, handle: AnalysisHandle) -> dict:
        cancelled = handle.cancel()
        return {"job": handle.key, "cancelled": cancelled,
                "status": handle.status()}

    def inspect_payload(self) -> dict:
        store = self.service.store
        if store is None:
            return {"root": None, "entries": []}
        return {"root": store.root,
                "entries": [asdict(entry) for entry in store.entries()]}

    def health_payload(self) -> dict:
        health = getattr(self.service, "health", None)
        return {"ok": True, "schema": SCHEMA_VERSION,
                "backend": self.service.backend.name,
                "stats": asdict(self.service.stats),
                "queue": self.service.queue_snapshot(),
                "draining": self._draining,
                "degraded": bool(getattr(self.service, "degraded", False)),
                "health": health.snapshot() if health is not None else {}}


def _make_handler(server: AnalysisServer):
    class Handler(BaseHTTPRequestHandler):
        # Chunked transfer (the /v1/events stream) is an HTTP/1.1
        # construct — a 1.0 response advertising it mis-frames for
        # conformant clients.  Plain replies always carry
        # Content-Length, so 1.1 keep-alive framing is satisfied too.
        protocol_version = "HTTP/1.1"

        # Silence per-request stderr logging (the CLI prints the address).
        def log_message(self, *args) -> None:  # noqa: D102
            pass

        def _reply(self, code: int, payload: dict | str,
                   headers: dict | None = None) -> None:
            body = (payload if isinstance(payload, str)
                    else json.dumps(payload, sort_keys=True))
            data = body.encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)

        def _error(self, code: int, message: str) -> None:
            self._reply(code, {"error": message})

        # ------------------------------------------------------------- routes
        def do_GET(self) -> None:  # noqa: N802 — http.server API
            try:
                path, _, query = self.path.partition("?")
                if path == "/v1/health":
                    self._reply(200, server.health_payload())
                elif path == "/v1/inspect":
                    self._reply(200, server.inspect_payload())
                elif path.startswith("/v1/status/"):
                    self._job_route(path[len("/v1/status/"):], query,
                                    want_result=False)
                elif path.startswith("/v1/result/"):
                    self._job_route(path[len("/v1/result/"):], query,
                                    want_result=True)
                elif path.startswith("/v1/partial/"):
                    self._partial_route(path[len("/v1/partial/"):])
                elif path.startswith("/v1/events/"):
                    self._events_route(path[len("/v1/events/"):], query)
                else:
                    self._error(404, f"unknown endpoint {path!r}")
            except Exception as exc:  # noqa: BLE001 — must answer the socket
                self._error(500, str(exc))

        @staticmethod
        def _wait_budget(query: str) -> float:
            """Seconds the ``wait=`` query grants, capped per slice."""
            try:
                values = urllib.parse.parse_qs(query).get("wait")
                wait = float(values[-1]) if values else 0.0
            except ValueError:
                wait = 0.0
            return max(0.0, min(wait, WAIT_SLICE_SECONDS))

        def _job_route(self, job: str, query: str, *,
                       want_result: bool) -> None:
            handle = server.handle_for(job)
            if handle is None:
                self._error(404, f"unknown job {job!r}")
                return
            wait = self._wait_budget(query) if want_result else 0.0
            if wait > 0 and not handle.done():
                try:
                    handle.result(timeout=wait)
                except TimeoutError:
                    pass  # report current status; the client re-polls
                # lint: allow(exc-swallowed): the failure is already recorded on the handle and reported below as status=error
                except Exception:  # noqa: BLE001 — surfaced as status=error
                    pass
            if not want_result or not handle.done():
                code = 200 if not want_result else 202
                self._reply(code, server.status_payload(handle))
                return
            status = handle.status()
            if status == "cancelled":
                payload = server.status_payload(handle)
                payload["error"] = (f"job {job} was cancelled; "
                                    f"resubmit to measure it")
                self._reply(409, payload)
                return
            if status == "error":
                self._reply(500, server.status_payload(handle))
                return
            result = handle.result()
            # from_cache is a runtime flag outside the schema; carry it
            # out-of-band so remote handles report cache hits faithfully.
            self._reply(200, result.to_json(),
                        headers={"X-Repro-From-Cache":
                                 "1" if result.from_cache else "0"})

        def _partial_route(self, job: str) -> None:
            handle = server.handle_for(job)
            if handle is None:
                self._error(404, f"unknown job {job!r}")
                return
            self._reply(200, handle.partial().to_json())

        def _events_route(self, job: str, query: str) -> None:
            """Chunked ndjson event stream (see module docstring)."""
            handle = server.handle_for(job)
            if handle is None:
                self._error(404, f"unknown job {job!r}")
                return
            params = urllib.parse.parse_qs(query)
            try:
                values = params.get("after")
                after = int(values[-1]) if values else 0
            except ValueError:
                after = 0
            # ?embed_partial=0 slims shard_done payloads to pointers —
            # wide requests otherwise amplify O(shards×curves) bytes
            # through every proxy hop.
            embed = (params.get("embed_partial", ["1"])[-1]
                     not in ("0", "false"))
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            try:
                yielded = 0
                for event in handle.events(after=after,
                                           timeout=WAIT_SLICE_SECONDS,
                                           embed_partial=embed):
                    yielded += 1
                    self._write_chunk(event.to_json() + "\n")
                if yielded == 0 and after > 0 and handle.done():
                    # A consumer resuming (after=N) against a job
                    # resurrected from the store would spin forever:
                    # the rebuilt log is a single terminal event whose
                    # seq is below what the client already saw, so the
                    # normal replay yields nothing.  Re-send just the
                    # terminal event — shard_done history was already
                    # delivered in the previous server life, so nothing
                    # duplicates — and the client's stream closes.
                    for event in handle.events(after=0, timeout=0.5):
                        if event.terminal and event.seq <= after:
                            self._write_chunk(event.to_json() + "\n")
                self.wfile.write(b"0\r\n\r\n")
            except (BrokenPipeError, ConnectionResetError):
                # The client hung up mid-stream (e.g. right after the
                # terminal event) — nothing left to answer.
                self.close_connection = True

        def _write_chunk(self, text: str) -> None:
            data = text.encode()
            self.wfile.write(f"{len(data):x}\r\n".encode())
            self.wfile.write(data)
            self.wfile.write(b"\r\n")

        def do_POST(self) -> None:  # noqa: N802 — http.server API
            try:
                path, _, query = self.path.partition("?")
                if path.startswith("/v1/cancel/"):
                    handle = server.handle_for(path[len("/v1/cancel/"):])
                    if handle is None:
                        self._error(404, "unknown job")
                        return
                    self._reply(200, server.cancel_payload(handle))
                    return
                if path != "/v1/submit":
                    self._error(404, f"unknown endpoint {self.path!r}")
                    return
                length = int(self.headers.get("Content-Length", 0))
                try:
                    values = urllib.parse.parse_qs(query).get("priority")
                    priority = int(values[-1]) if values else 0
                    client = self.headers.get("X-Repro-Client") or None
                    payload = json.loads(self.rfile.read(length) or b"{}")
                    response = server.submit_payload(payload,
                                                     priority=priority,
                                                     client_id=client)
                except ServerDraining as exc:
                    # Graceful shutdown: refuse new work but tell the
                    # client this is temporary unavailability.
                    self._reply(503, {"error": str(exc)},
                                headers={"Retry-After": "5"})
                    return
                except QueueFull as exc:
                    # Explicit backpressure: tell the client when to
                    # come back instead of queuing unboundedly.
                    self._reply(429, {"error": str(exc),
                                      "retry_after": exc.retry_after},
                                headers={"Retry-After":
                                         f"{max(1, int(exc.retry_after))}"})
                    return
                except (ValueError, KeyError, TypeError) as exc:
                    self._error(400, str(exc))
                    return
                self._reply(200, response)
            except Exception as exc:  # noqa: BLE001 — must answer the socket
                self._error(500, str(exc))

    return Handler


# --------------------------------------------------------------------- client
class RemoteHandle:
    """Client-side :class:`~repro.api.service.AnalysisHandle` twin.

    Mirrors the handle API (``result``/``done``/``status``/``progress``/
    ``events``/``partial``/``cancel``) by polling the server's status
    endpoint, consuming the chunked event stream and long-polling the
    result endpoint, so code written against in-process handles works
    over the wire unchanged.
    """

    def __init__(self, remote: "RemoteService", request: AnalysisRequest,
                 job: str):
        self.remote = remote
        self.request = request
        self.key = job
        self._result: AnalysisResult | None = None

    def _status_payload(self) -> dict:
        return self.remote._get_json(f"/v1/status/{self.key}")

    def status(self) -> str:
        if self._result is not None:
            return "cached" if self._result.from_cache else "done"
        return self._status_payload()["status"]

    def done(self) -> bool:
        return (self._result is not None
                or self.status() in ("done", "cached", "error", "cancelled"))

    @property
    def progress(self) -> dict:
        payload = self._status_payload()
        return {name: payload[name] for name in
                ("shards_total", "shards_started", "shards_done")
                if name in payload}

    def result(self, timeout: float | None = None) -> AnalysisResult:
        if self._result is None:
            self._result = self.remote._fetch_result(self.key,
                                                     timeout=timeout)
        return self._result

    def events(self, after: int = 0, timeout: float | None = None, *,
               embed_partial: bool = True):
        """Stream the job's :class:`~repro.api.events.AnalysisEvent`
        records over the chunked ``/v1/events`` endpoint.

        Transparently reconnects when the server ends a stream slice
        without a terminal event (its silence bound); ``timeout`` caps
        the *total* wall-clock spent waiting, after which the generator
        returns (resume later with ``after=<last seen seq>``).
        ``embed_partial=False`` asks the server for slim ``shard_done``
        events (pointer instead of the merged-so-far payload; fetch
        :meth:`partial` for the snapshot).
        """
        yield from self.remote._stream_events(self.key, after=after,
                                              timeout=timeout,
                                              embed_partial=embed_partial)

    def partial(self) -> PartialResult:
        """The server's merged-so-far :class:`~repro.api.request.
        PartialResult` snapshot for this job."""
        with self.remote._request(f"/v1/partial/{self.key}") as response:
            return PartialResult.from_json(response.read().decode())

    def cancel(self) -> bool:
        """Request server-side cooperative cancellation of this job."""
        with self.remote._request(f"/v1/cancel/{self.key}",
                                  data=b"") as response:
            return bool(json.loads(response.read())["cancelled"])


class RemoteService:
    """Thin client for a running :class:`AnalysisServer`.

    Exposes the service verbs the experiment runners use —
    ``submit``/``submit_many``/``run``/``run_many`` and a read-only
    ``entry``-free surface — so ``fig9.run(service=RemoteService(url))``
    measures on the server and returns byte-identical results.  Verbs
    that require in-process state (:meth:`register`) error loudly.

    Backpressure: a 429 response carries the server's ``Retry-After``
    hint; :meth:`submit` honours it for up to ``busy_retries`` attempts
    (sleeping the hinted seconds, capped at ``busy_wait_cap``) before
    surfacing :class:`RemoteBusy` to the caller.

    ``client_id`` names this client's tenant for the server's fair
    scheduler; it rides every request as the ``X-Repro-Client`` header
    (an explicit ``options.client_id`` in a submitted request wins).
    """

    #: Socket-timeout headroom over the requested server-side hold; a
    #: socket timeout past it means the server is really gone.
    poll_grace = 15.0

    def __init__(self, url: str, *, timeout: float = 600.0,
                 busy_retries: int = 3, busy_wait_cap: float = 30.0,
                 client_id: str | None = None):
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.busy_retries = int(busy_retries)
        self.busy_wait_cap = float(busy_wait_cap)
        self.client_id = client_id

    # ------------------------------------------------------------ transport
    def _request(self, path: str, data: bytes | None = None,
                 timeout: float | None = None):
        headers = ({"Content-Type": "application/json"}
                   if data is not None else {})
        if self.client_id is not None:
            headers["X-Repro-Client"] = self.client_id
        request = urllib.request.Request(self.url + path, data=data,
                                         headers=headers)
        try:
            return urllib.request.urlopen(
                request, timeout=timeout or self.timeout)
        except urllib.error.HTTPError as exc:
            headers = exc.headers
            try:
                detail = json.loads(exc.read()).get("error", "")
            except Exception:  # noqa: BLE001 — error body is best-effort
                detail = ""
            if exc.code == 429:
                try:
                    retry_after = float(headers.get("Retry-After", 1.0))
                except (TypeError, ValueError):
                    retry_after = 1.0
                raise RemoteBusy(
                    f"{path}: HTTP 429" + (f" — {detail}" if detail else ""),
                    retry_after=retry_after) from None
            if exc.code == 409:
                raise AnalysisCancelled(
                    detail or f"{path}: job was cancelled") from None
            raise RemoteError(
                f"{path}: HTTP {exc.code}" + (f" — {detail}" if detail
                                              else "")) from None
        except urllib.error.URLError as exc:
            raise RemoteError(f"cannot reach analysis server at "
                              f"{self.url}: {exc.reason}") from None

    def _get_json(self, path: str) -> dict:
        with self._request(path) as response:
            return json.loads(response.read())

    @staticmethod
    def _sleep(seconds: float) -> None:
        """Backoff sleep (a method so tests can observe/neutralise it)."""
        time.sleep(seconds)

    # -------------------------------------------------------------- service
    def health(self) -> dict:
        return self._get_json("/v1/health")

    def inspect(self) -> dict:
        return self._get_json("/v1/inspect")

    def submit(self, request: AnalysisRequest, *,
               priority: int = 0) -> RemoteHandle:
        payload = request.to_json().encode()
        path = "/v1/submit" + (f"?priority={int(priority)}" if priority
                               else "")
        attempts = 0
        while True:
            try:
                with self._request(path, data=payload) as response:
                    job = json.loads(response.read())["job"]
                return RemoteHandle(self, request, job)
            except RemoteBusy as busy:
                attempts += 1
                if attempts > self.busy_retries:
                    raise
                self._sleep(min(busy.retry_after, self.busy_wait_cap))

    def submit_many(self, requests, *, priority: int = 0
                    ) -> list[RemoteHandle]:
        return [self.submit(request, priority=priority)
                for request in requests]

    def run(self, request: AnalysisRequest, *,
            priority: int = 0) -> AnalysisResult:
        return self.submit(request, priority=priority).result()

    def run_many(self, requests, *, priority: int = 0
                 ) -> list[AnalysisResult]:
        return [handle.result()
                for handle in self.submit_many(requests, priority=priority)]

    def _stream_events(self, job: str, *, after: int = 0,
                       timeout: float | None = None,
                       embed_partial: bool = True):
        """Consume ``/v1/events/<job>`` slices until the terminal event."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        suffix = "" if embed_partial else "&embed_partial=0"
        while True:
            slice_timeout = WAIT_SLICE_SECONDS + self.poll_grace
            saw_any = False
            with self._request(f"/v1/events/{job}?after={after}{suffix}",
                               timeout=slice_timeout) as response:
                for raw in response:
                    line = raw.strip()
                    if not line:
                        continue
                    event = AnalysisEvent.from_json(line.decode())
                    after = event.seq
                    saw_any = True
                    yield event
                    if event.terminal:
                        return
            if deadline is not None and time.monotonic() >= deadline \
                    and not saw_any:
                return

    def register(self, name: str, model, dataset) -> None:
        raise RemoteError(
            "RemoteService cannot register in-memory sessions: the model "
            "lives in this process and does not cross the wire; run a "
            "local ResilienceService for session-based analyses")

    def entry(self, ref) -> None:
        raise RemoteError(
            f"RemoteService cannot resolve {ref.key!r} to an in-process "
            f"model: analyses that touch the model object directly (e.g. "
            f"the X2 routing ablation) need a local ResilienceService")

    def _fetch_result(self, job: str,
                      timeout: float | None = None) -> AnalysisResult:
        """Long-poll the result endpoint until done/error/deadline.

        Each poll asks the server to hold the request for the *remaining*
        wait budget (capped server-side at :data:`WAIT_SLICE_SECONDS`),
        and the socket timeout always exceeds the requested hold — a
        socket-level timeout therefore means the server is genuinely
        unreachable (:class:`RemoteError`), while an exhausted caller
        deadline raises :class:`TimeoutError`, matching the in-process
        :class:`~repro.api.service.AnalysisHandle` contract.
        """
        import time as _time
        deadline = None if timeout is None else _time.monotonic() + timeout
        while True:
            if deadline is None:
                wait = WAIT_SLICE_SECONDS
            else:
                wait = max(0.0, min(WAIT_SLICE_SECONDS,
                                    deadline - _time.monotonic()))
            with self._request(f"/v1/result/{job}?wait={wait:.3f}",
                               timeout=wait + self.poll_grace) as response:
                body = response.read()
                if response.status == 200:
                    result = AnalysisResult.from_json(body.decode())
                    result.from_cache = (response.headers.get(
                        "X-Repro-From-Cache") == "1")
                    return result
            payload = json.loads(body)
            if payload.get("status") == "error":
                raise RemoteError(f"job {job} failed remotely: "
                                  f"{payload.get('error', 'unknown error')}")
            if deadline is not None and _time.monotonic() >= deadline:
                raise TimeoutError(f"job {job} still "
                                   f"{payload.get('status')} after "
                                   f"{timeout}s")
