"""Persistent, fingerprint-keyed store for analysis results.

Layout: one JSON document per result under the store root (default
``.artifacts/results``, override with ``REPRO_RESULT_DIR`` or the CLI's
``--cache-dir``), named

    ``<request fingerprint>-m<model CRC>-d<dataset CRC>-e<engine rev>.json``

The key is fully content-addressed:

* the **request fingerprint** hashes everything the caller declared
  (model ref, targets, NM/NA grid, seed, eval subset, pinned baseline,
  noise kind) plus the result-affecting execution knobs — a changed grid
  or seed is a different key;
* the **model CRC** covers parameters, buffers and routing depth
  (:func:`repro.core.sweep.model_fingerprint`) — retraining or mutating
  a model in place auto-invalidates without any explicit bookkeeping;
* the **dataset CRC** covers the evaluated images/labels — a different
  eval subset or regenerated synthetic split cannot alias;
* the **engine revision** (:data:`repro.core.sweep.ENGINE_REV`) salts
  the key with the *code* version of the measurement itself.  The other
  components are inputs-only: a bugfix that changes the numerics would
  otherwise keep serving the buggy cached curves forever (cache
  poisoning).  Bumping ``ENGINE_REV`` misses every old entry.

Invalidation is therefore *keying*, not deletion: stale entries are
simply never looked up again.  ``gc()`` (CLI: ``repro gc``) exists for
reclaiming the disk they hold — unreadable/schema-stale documents,
entries keyed under a previous engine revision, and orphaned write
temporaries always go; age-based and wholesale pruning are opt-in
(``older_than``/``everything``).  Writes are atomic (temp file +
``os.replace``) so concurrent runs never observe torn JSON.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import time
from dataclasses import dataclass, field

from ..core.sweep import ENGINE_REV
from .request import AnalysisResult, SchemaError

__all__ = ["ResultStore", "StoreEntry", "GcReport", "store_key",
           "default_store_root"]


def default_store_root() -> str:
    """``REPRO_RESULT_DIR`` or ``<repo>/.artifacts/results``.

    Anchored next to the zoo's weight cache: ``<repo>/src/repro/api`` →
    four levels up to the repo root.
    """
    root = os.environ.get("REPRO_RESULT_DIR")
    if root is None:
        package_root = os.path.abspath(__file__)
        for _ in range(4):
            package_root = os.path.dirname(package_root)
        root = os.path.join(package_root, ".artifacts", "results")
    return root


def store_key(request_fingerprint: str, model_crc: int,
              dataset_crc: int) -> str:
    """The content-addressed key of one (request, model, dataset) triple.

    Salted with :data:`repro.core.sweep.ENGINE_REV` — the measurement
    code's own version — because the other components only see *inputs*:
    without the salt, a numerics bugfix would keep serving the pre-fix
    cached curves (the cache-poisoning failure mode).  Referenced as a
    module global so tests can exercise a rev bump via monkeypatching.
    """
    return (f"{request_fingerprint}-m{model_crc & 0xffffffff:08x}"
            f"-d{dataset_crc & 0xffffffff:08x}-e{ENGINE_REV}")


@dataclass
class GcReport:
    """What one :meth:`ResultStore.gc` pass removed (and why)."""

    root: str = ""
    removed: int = 0
    reclaimed_bytes: int = 0
    kept: int = 0
    by_reason: dict = field(default_factory=dict)

    def remove(self, path: str, reason: str) -> None:
        """Delete ``path`` and account for it under ``reason``."""
        try:
            size = os.path.getsize(path)
            os.remove(path)
        except OSError:
            return  # raced with a concurrent writer/gc; nothing to count
        self.removed += 1
        self.reclaimed_bytes += size
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1

    def summary(self) -> str:
        reasons = ", ".join(f"{count} {reason}" for reason, count
                            in sorted(self.by_reason.items()))
        return (f"removed {self.removed} entr"
                f"{'y' if self.removed == 1 else 'ies'}"
                + (f" ({reasons})" if reasons else "")
                + f", reclaimed {self.reclaimed_bytes} bytes, "
                  f"kept {self.kept}")


@dataclass(frozen=True)
class StoreEntry:
    """Summary of one stored result (what ``repro inspect`` lists)."""

    key: str
    path: str
    model: str
    noise: str
    targets: int
    nm_values: int
    created: float
    elapsed_seconds: float


class ResultStore:
    """Content-addressed result persistence (see module docstring)."""

    def __init__(self, root: str | None = None):
        self.root = root or default_store_root()
        os.makedirs(self.root, exist_ok=True)

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key + ".json")

    def get(self, key: str) -> AnalysisResult | None:
        """The stored result for ``key``, or ``None``.

        Unreadable or schema-incompatible entries are treated as misses —
        the caller recomputes and overwrites.
        """
        path = self.path_for(key)
        try:
            with open(path) as stream:
                result = AnalysisResult.from_payload(json.load(stream))
        except (OSError, ValueError, KeyError, TypeError, AttributeError,
                SchemaError):
            # TypeError/AttributeError: documents that parse as JSON but
            # are not result dicts (e.g. a bare `null`) — as unreadable
            # as torn JSON, and gc() must be able to collect them.
            return None
        result.from_cache = True
        return result

    def put(self, key: str, result: AnalysisResult) -> str:
        """Persist ``result`` under ``key`` atomically; returns the path.

        Completeness guard: only results answering *every* point of
        their own request are persisted.  A partial shard (e.g. one cut
        short by cancellation) filed as complete would be served as a
        warm hit forever after — the progressive-results redesign keeps
        partials in memory (:class:`~repro.api.request.PartialResult`)
        and the store stores exactly what the blocking path returns.
        """
        self._check_complete(key, result)
        path = self.path_for(key)
        handle, scratch = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(handle, "w") as stream:
                stream.write(result.to_json())
            os.replace(scratch, path)
        except BaseException:
            try:
                os.remove(scratch)
            except FileNotFoundError:
                # A concurrent gc() already collected the orphan (or the
                # failure struck after the replace promoted it).
                pass
            raise
        return path

    @staticmethod
    def _check_complete(key: str, result: AnalysisResult) -> None:
        """Refuse to persist a result that does not fully answer its
        request (see :meth:`put`)."""
        request = result.request
        expected = {target.key for target in request.targets}
        if set(result.curves) != expected:
            missing = sorted(str(k) for k in expected - set(result.curves))
            raise ValueError(
                f"refusing to store partial result under {key!r}: curves "
                f"missing for target(s) {missing} — only complete results "
                f"are persisted")
        for target_key, curve in result.curves.items():
            if len(curve.points) != len(request.nm_values):
                raise ValueError(
                    f"refusing to store partial result under {key!r}: "
                    f"target {target_key!r} has {len(curve.points)} points, "
                    f"request asked for {len(request.nm_values)} — only "
                    f"complete results are persisted")

    # ------------------------------------------------------------ inspection
    def keys(self) -> list[str]:
        """Stored keys, newest first."""
        names = [name[:-len(".json")] for name in os.listdir(self.root)
                 if name.endswith(".json")]
        return sorted(names, key=lambda key: os.path.getmtime(
            self.path_for(key)), reverse=True)

    def entries(self) -> list[StoreEntry]:
        """Summaries of every readable stored result, newest first."""
        entries = []
        for key in self.keys():
            result = self.get(key)
            if result is None:
                continue
            entries.append(StoreEntry(
                key=key, path=self.path_for(key),
                model=result.request.model.key,
                noise=result.request.noise,
                targets=len(result.request.targets),
                nm_values=len(result.request.nm_values),
                created=result.created,
                elapsed_seconds=result.elapsed_seconds))
        return entries

    def prune(self) -> int:
        """Delete every stored entry; returns how many were removed."""
        return self.gc(everything=True).removed

    # --------------------------------------------------------------- garbage
    @staticmethod
    def _stale_engine_rev(key: str) -> bool:
        """Whether ``key`` is content-addressed but salted with a
        previous :data:`~repro.core.sweep.ENGINE_REV` (or none at all,
        the pre-salt layout).  Manually-named keys (no ``-m…-d…`` CRC
        tail) are not the store's to version — they fall through to the
        readability check instead.
        """
        match = re.search(r"-m[0-9a-f]{8}-d[0-9a-f]{8}(?:-e(\d+))?$", key)
        if match is None:
            return False
        rev = match.group(1)
        return rev is None or int(rev) != ENGINE_REV

    def gc(self, *, older_than: float | None = None,
           everything: bool = False) -> "GcReport":
        """Reclaim disk from stale, orphaned, aged or (optionally) all
        entries; returns what was removed and how many bytes came back.

        Always removed:

        * **orphans** — ``*.tmp`` write temporaries left by a crashed
          :meth:`put` (the atomic-replace never promoted them);
        * **engine-rev** entries — keys salted with a previous
          :data:`~repro.core.sweep.ENGINE_REV` (or none at all, the
          pre-salt layout): the current code will never look them up
          again, they can only hold stale numerics;
        * **stale** entries — documents that no longer parse or carry an
          unsupported schema version (they can only ever be misses).

        Opt-in:

        * ``older_than`` (seconds) — live entries whose file mtime is
          older than ``now - older_than`` (the store touches mtime on
          every ``put``, so this is "not re-measured recently");
        * ``everything`` — the full store.
        """
        report = GcReport(root=self.root)
        cutoff = None if older_than is None else time.time() - older_than
        try:
            names = os.listdir(self.root)
        except OSError:
            return report
        for name in names:
            path = os.path.join(self.root, name)
            if name.endswith(".tmp"):
                report.remove(path, "orphaned")
                continue
            if not name.endswith(".json"):
                continue
            key = name[:-len(".json")]
            if everything:
                report.remove(path, "pruned")
                continue
            if self._stale_engine_rev(key):
                report.remove(path, "engine-rev")
                continue
            if self.get(key) is None:
                report.remove(path, "stale")
                continue
            if cutoff is not None and os.path.getmtime(path) < cutoff:
                report.remove(path, "expired")
                continue
            report.kept += 1
        return report
