"""Persistent, fingerprint-keyed store for analysis results.

Layout: one JSON document per result under the store root (default
``.artifacts/results``, override with ``REPRO_RESULT_DIR`` or the CLI's
``--cache-dir``), named

    ``<request fingerprint>-m<model CRC>-d<dataset CRC>-e<engine rev>.json``

The key is fully content-addressed:

* the **request fingerprint** hashes everything the caller declared
  (model ref, targets, NM/NA grid, seed, eval subset, pinned baseline,
  noise kind) plus the result-affecting execution knobs — a changed grid
  or seed is a different key;
* the **model CRC** covers parameters, buffers and routing depth
  (:func:`repro.core.sweep.model_fingerprint`) — retraining or mutating
  a model in place auto-invalidates without any explicit bookkeeping;
* the **dataset CRC** covers the evaluated images/labels — a different
  eval subset or regenerated synthetic split cannot alias;
* the **engine revision** (:data:`repro.core.sweep.ENGINE_REV`) salts
  the key with the *code* version of the measurement itself.  The other
  components are inputs-only: a bugfix that changes the numerics would
  otherwise keep serving the buggy cached curves forever (cache
  poisoning).  Bumping ``ENGINE_REV`` misses every old entry.

Invalidation is therefore *keying*, not deletion: stale entries are
simply never looked up again.  ``gc()`` (CLI: ``repro gc``) exists for
reclaiming the disk they hold — unreadable/schema-stale documents,
entries keyed under a previous engine revision, and orphaned write
temporaries always go; age-based and wholesale pruning are opt-in
(``older_than``/``everything``).  Writes are atomic (temp file +
``os.replace``) so concurrent runs never observe torn JSON.

*Where* documents live on disk is a pluggable :class:`StoreLayout`
(ISSUE 10).  The default :class:`LocalDirLayout` is the historical flat
directory — one ``<key>.json`` per result directly under the root.
:class:`SharedFSLayout` targets a root that several fleet nodes mount at
once (NFS, a bind-mounted volume): documents fan out into two-character
key-prefix subdirectories, write temporaries embed the writer's
hostname/PID so concurrent nodes can never collide, publication fsyncs
before the atomic rename, and orphan collection is age-gated (a fresh
``.tmp`` is presumed to be another node's in-flight write).  The store's
keying, completeness guard and gc taxonomy are layout-independent — a
warm hit produced by node A is a warm hit for node B.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import socket
import tempfile
import time
from dataclasses import dataclass, field

from ..core.sweep import ENGINE_REV
from .request import AnalysisResult, SchemaError

__all__ = ["ResultStore", "StoreEntry", "GcReport", "store_key",
           "default_store_root", "StoreLayout", "LocalDirLayout",
           "SharedFSLayout", "make_layout", "LAYOUT_NAMES"]


def default_store_root() -> str:
    """``REPRO_RESULT_DIR`` or ``<repo>/.artifacts/results``.

    Anchored next to the zoo's weight cache: ``<repo>/src/repro/api`` →
    four levels up to the repo root.
    """
    root = os.environ.get("REPRO_RESULT_DIR")
    if root is None:
        package_root = os.path.abspath(__file__)
        for _ in range(4):
            package_root = os.path.dirname(package_root)
        root = os.path.join(package_root, ".artifacts", "results")
    return root


def store_key(request_fingerprint: str, model_crc: int,
              dataset_crc: int) -> str:
    """The content-addressed key of one (request, model, dataset) triple.

    Salted with :data:`repro.core.sweep.ENGINE_REV` — the measurement
    code's own version — because the other components only see *inputs*:
    without the salt, a numerics bugfix would keep serving the pre-fix
    cached curves (the cache-poisoning failure mode).  Referenced as a
    module global so tests can exercise a rev bump via monkeypatching.
    """
    return (f"{request_fingerprint}-m{model_crc & 0xffffffff:08x}"
            f"-d{dataset_crc & 0xffffffff:08x}-e{ENGINE_REV}")


# ------------------------------------------------------------------- layouts
class StoreLayout:
    """Where result documents live under a store root (see module
    docstring).

    A layout owns the *filesystem geometry* — key → path, atomic
    publication, enumeration, orphan discovery — and nothing about
    result semantics.  ``gc()`` and every read path go through this seam,
    so a layout is also the unit of multi-node safety: two stores (or two
    processes on two machines) over the same root must be able to
    publish, read and collect concurrently.
    """

    #: Registry name (``make_layout``/CLI ``--store-layout``).
    name: str = "abstract"

    def __init__(self, root: str):
        self.root = root
        os.makedirs(self.root, exist_ok=True)

    def path_for(self, key: str) -> str:
        """Canonical document path for ``key`` (may not exist)."""
        raise NotImplementedError

    def publish(self, key: str, text: str) -> str:
        """Atomically persist ``text`` as ``key``'s document; returns
        the path.  Readers (on any node) see the old document or the new
        one, never torn bytes."""
        raise NotImplementedError

    def keys(self) -> list[str]:
        """Every stored key, unordered (the store sorts)."""
        raise NotImplementedError

    def orphans(self) -> list[str]:
        """Write-temporary paths that are safe to collect *now*."""
        raise NotImplementedError


class LocalDirLayout(StoreLayout):
    """The historical single-node layout: a flat directory of
    ``<key>.json`` documents with ``mkstemp`` write temporaries alongside.
    Every ``.tmp`` is immediately collectable — only this process family
    writes here, and a live :meth:`publish` holds its scratch for
    milliseconds."""

    name = "local"

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key + ".json")

    def publish(self, key: str, text: str) -> str:
        path = self.path_for(key)
        handle, scratch = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(handle, "w") as stream:
                stream.write(text)
            os.replace(scratch, path)
        except BaseException:
            try:
                os.remove(scratch)
            except FileNotFoundError:
                # A concurrent gc() already collected the orphan (or the
                # failure struck after the replace promoted it).
                pass
            raise
        return path

    def keys(self) -> list[str]:
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return [name[:-len(".json")] for name in names
                if name.endswith(".json")]

    def orphans(self) -> list[str]:
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return [os.path.join(self.root, name) for name in names
                if name.endswith(".tmp")]


#: Monotonic per-process counter keeping one process's shared-layout
#: scratch names unique even across threads.
_SCRATCH_SEQ = itertools.count()


class SharedFSLayout(StoreLayout):
    """A store root mounted by several fleet nodes at once.

    Differences from :class:`LocalDirLayout`, each motivated by the
    multi-writer setting:

    * documents fan out into two-character key-prefix subdirectories so
      a fleet's worth of entries doesn't degrade into one giant
      directory listing on network filesystems;
    * scratch names embed ``hostname.pid.seq`` — ``mkstemp`` alone only
      guarantees uniqueness per filesystem *view*, and two nodes racing
      the same NFS directory must never reuse a name;
    * :meth:`publish` flushes and ``fsync``\\ s before the atomic
      rename, so a crashed node cannot leave a successfully-renamed but
      empty document for its peers;
    * :meth:`orphans` only offers ``.tmp`` files older than
      ``orphan_grace`` seconds — a fresh temporary is presumed to be
      another node's in-flight write, which makes concurrent ``gc`` from
      two nodes safe by construction.
    """

    name = "shared"

    def __init__(self, root: str, orphan_grace: float = 60.0):
        super().__init__(root)
        self.orphan_grace = float(orphan_grace)

    @staticmethod
    def _prefix(key: str) -> str:
        return key[:2] if len(key) >= 2 else "_"

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, self._prefix(key), key + ".json")

    def publish(self, key: str, text: str) -> str:
        path = self.path_for(key)
        bucket = os.path.dirname(path)
        os.makedirs(bucket, exist_ok=True)
        scratch = os.path.join(
            bucket, f".{key}.{socket.gethostname()}.{os.getpid()}"
                    f".{next(_SCRATCH_SEQ)}.tmp")
        try:
            with open(scratch, "w") as stream:
                stream.write(text)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(scratch, path)
        except BaseException:
            try:
                os.remove(scratch)
            except FileNotFoundError:
                pass
            raise
        return path

    def _buckets(self) -> list[str]:
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        buckets = []
        for name in names:
            bucket = os.path.join(self.root, name)
            if os.path.isdir(bucket):
                buckets.append(bucket)
        return buckets

    def keys(self) -> list[str]:
        keys = []
        for bucket in self._buckets():
            try:
                names = os.listdir(bucket)
            except OSError:
                continue  # bucket raced away under a concurrent gc
            keys.extend(name[:-len(".json")] for name in names
                        if name.endswith(".json"))
        return keys

    def orphans(self) -> list[str]:
        cutoff = time.time() - self.orphan_grace
        stale = []
        for bucket in self._buckets():
            try:
                names = os.listdir(bucket)
            except OSError:
                continue
            for name in names:
                if not name.endswith(".tmp"):
                    continue
                path = os.path.join(bucket, name)
                try:
                    if os.path.getmtime(path) < cutoff:
                        stale.append(path)
                except OSError:
                    continue  # already published or collected
        return stale


#: Names ``make_layout`` (and the CLI's ``--store-layout``) accepts.
LAYOUT_NAMES: tuple[str, ...] = ("local", "shared")


def make_layout(layout: str, root: str | None = None) -> StoreLayout:
    """Build a :class:`StoreLayout` by registry name."""
    if layout not in LAYOUT_NAMES:
        raise ValueError(f"unknown store layout {layout!r}; "
                         f"valid: {list(LAYOUT_NAMES)}")
    resolved = root or default_store_root()
    if layout == "shared":
        return SharedFSLayout(resolved)
    return LocalDirLayout(resolved)


@dataclass
class GcReport:
    """What one :meth:`ResultStore.gc` pass removed (and why)."""

    root: str = ""
    removed: int = 0
    reclaimed_bytes: int = 0
    kept: int = 0
    by_reason: dict = field(default_factory=dict)

    def remove(self, path: str, reason: str) -> None:
        """Delete ``path`` and account for it under ``reason``."""
        try:
            size = os.path.getsize(path)
            os.remove(path)
        except OSError:
            return  # raced with a concurrent writer/gc; nothing to count
        self.removed += 1
        self.reclaimed_bytes += size
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1

    def summary(self) -> str:
        reasons = ", ".join(f"{count} {reason}" for reason, count
                            in sorted(self.by_reason.items()))
        return (f"removed {self.removed} entr"
                f"{'y' if self.removed == 1 else 'ies'}"
                + (f" ({reasons})" if reasons else "")
                + f", reclaimed {self.reclaimed_bytes} bytes, "
                  f"kept {self.kept}")


@dataclass(frozen=True)
class StoreEntry:
    """Summary of one stored result (what ``repro inspect`` lists)."""

    key: str
    path: str
    model: str
    noise: str
    targets: int
    nm_values: int
    created: float
    elapsed_seconds: float


class ResultStore:
    """Content-addressed result persistence (see module docstring).

    ``layout`` selects the filesystem geometry: a :data:`LAYOUT_NAMES`
    name (``"local"`` — the default single-node flat directory — or
    ``"shared"`` for a fleet-mounted root) or a prebuilt
    :class:`StoreLayout` instance.
    """

    def __init__(self, root: str | None = None,
                 layout: str | StoreLayout = "local"):
        if isinstance(layout, StoreLayout):
            if root is not None and root != layout.root:
                raise ValueError(
                    f"conflicting store roots: root={root!r} but the "
                    f"prebuilt layout owns {layout.root!r}")
            self.layout = layout
        else:
            self.layout = make_layout(layout, root)
        self.root = self.layout.root

    def path_for(self, key: str) -> str:
        return self.layout.path_for(key)

    def get(self, key: str) -> AnalysisResult | None:
        """The stored result for ``key``, or ``None``.

        Unreadable or schema-incompatible entries are treated as misses —
        the caller recomputes and overwrites.
        """
        path = self.path_for(key)
        try:
            with open(path) as stream:
                result = AnalysisResult.from_payload(json.load(stream))
        except (OSError, ValueError, KeyError, TypeError, AttributeError,
                SchemaError):
            # TypeError/AttributeError: documents that parse as JSON but
            # are not result dicts (e.g. a bare `null`) — as unreadable
            # as torn JSON, and gc() must be able to collect them.
            return None
        result.from_cache = True
        return result

    def put(self, key: str, result: AnalysisResult) -> str:
        """Persist ``result`` under ``key`` atomically; returns the path.

        Completeness guard: only results answering *every* point of
        their own request are persisted.  A partial shard (e.g. one cut
        short by cancellation) filed as complete would be served as a
        warm hit forever after — the progressive-results redesign keeps
        partials in memory (:class:`~repro.api.request.PartialResult`)
        and the store stores exactly what the blocking path returns.
        """
        self._check_complete(key, result)
        return self.layout.publish(key, result.to_json())

    @staticmethod
    def _check_complete(key: str, result: AnalysisResult) -> None:
        """Refuse to persist a result that does not fully answer its
        request (see :meth:`put`)."""
        request = result.request
        expected = {target.key for target in request.targets}
        if set(result.curves) != expected:
            missing = sorted(str(k) for k in expected - set(result.curves))
            raise ValueError(
                f"refusing to store partial result under {key!r}: curves "
                f"missing for target(s) {missing} — only complete results "
                f"are persisted")
        for target_key, curve in result.curves.items():
            if len(curve.points) != len(request.nm_values):
                raise ValueError(
                    f"refusing to store partial result under {key!r}: "
                    f"target {target_key!r} has {len(curve.points)} points, "
                    f"request asked for {len(request.nm_values)} — only "
                    f"complete results are persisted")

    # ------------------------------------------------------------ inspection
    def _mtime(self, key: str) -> float:
        """Document mtime, racing deletes to epoch-zero instead of OSError."""
        try:
            return os.path.getmtime(self.path_for(key))
        except OSError:
            return 0.0

    def keys(self) -> list[str]:
        """Stored keys, newest first."""
        return sorted(self.layout.keys(), key=self._mtime, reverse=True)

    def entries(self) -> list[StoreEntry]:
        """Summaries of every readable stored result, newest first."""
        entries = []
        for key in self.keys():
            result = self.get(key)
            if result is None:
                continue
            entries.append(StoreEntry(
                key=key, path=self.path_for(key),
                model=result.request.model.key,
                noise=result.request.noise,
                targets=len(result.request.targets),
                nm_values=len(result.request.nm_values),
                created=result.created,
                elapsed_seconds=result.elapsed_seconds))
        return entries

    def prune(self) -> int:
        """Delete every stored entry; returns how many were removed."""
        return self.gc(everything=True).removed

    # --------------------------------------------------------------- garbage
    @staticmethod
    def _stale_engine_rev(key: str) -> bool:
        """Whether ``key`` is content-addressed but salted with a
        previous :data:`~repro.core.sweep.ENGINE_REV` (or none at all,
        the pre-salt layout).  Manually-named keys (no ``-m…-d…`` CRC
        tail) are not the store's to version — they fall through to the
        readability check instead.
        """
        match = re.search(r"-m[0-9a-f]{8}-d[0-9a-f]{8}(?:-e(\d+))?$", key)
        if match is None:
            return False
        rev = match.group(1)
        return rev is None or int(rev) != ENGINE_REV

    def gc(self, *, older_than: float | None = None,
           everything: bool = False) -> "GcReport":
        """Reclaim disk from stale, orphaned, aged or (optionally) all
        entries; returns what was removed and how many bytes came back.

        Always removed:

        * **orphans** — ``*.tmp`` write temporaries left by a crashed
          :meth:`put` (the atomic-replace never promoted them); what is
          *safely* collectable is the layout's call — the shared layout
          age-gates them because a fresh temporary may be another node's
          in-flight write;
        * **engine-rev** entries — keys salted with a previous
          :data:`~repro.core.sweep.ENGINE_REV` (or none at all, the
          pre-salt layout): the current code will never look them up
          again, they can only hold stale numerics;
        * **stale** entries — documents that no longer parse or carry an
          unsupported schema version (they can only ever be misses).

        Opt-in:

        * ``older_than`` (seconds) — live entries whose file mtime is
          older than ``now - older_than`` (the store touches mtime on
          every ``put``, so this is "not re-measured recently");
        * ``everything`` — the full store.

        Concurrent passes (two fleet nodes sweeping one shared root) are
        safe: every delete goes through :meth:`GcReport.remove`, which
        treats a lost race as "nothing to count", so each reclaimed file
        is counted by exactly one report.
        """
        report = GcReport(root=self.root)
        cutoff = None if older_than is None else time.time() - older_than
        for path in self.layout.orphans():
            report.remove(path, "orphaned")
        for key in self.layout.keys():
            path = self.path_for(key)
            if everything:
                report.remove(path, "pruned")
                continue
            if self._stale_engine_rev(key):
                report.remove(path, "engine-rev")
                continue
            if self.get(key) is None:
                report.remove(path, "stale")
                continue
            if cutoff is not None:
                try:
                    mtime = os.path.getmtime(path)
                except OSError:
                    continue  # a concurrent gc won the race; not ours
                if mtime < cutoff:
                    report.remove(path, "expired")
                    continue
            report.kept += 1
        return report
