"""The job-oriented analysis service fronting the sweep machinery.

:class:`ResilienceService` turns declarative
:class:`~repro.api.request.AnalysisRequest` jobs into
:class:`~repro.api.request.AnalysisResult` responses while owning every
piece of lifecycle the one-shot scripts used to hand-thread:

* **Model/zoo resolution** — benchmark and zoo refs resolve through
  :mod:`repro.zoo` once and stay resident; in-memory models register as
  named *sessions* (:meth:`register`).
* **Engine reuse** — one :class:`~repro.core.sweep.SweepEngine` per
  (model ref, eval subset, execution options), so the prefix-activation
  cache built by one request (e.g. the Fig. 9 group sweep) is reused by
  the next (the Fig. 10 layer refinement) exactly as the methodology's
  Steps 2+4 always shared an engine.
* **Result persistence** — results land in a content-addressed
  :class:`~repro.api.store.ResultStore` keyed by request fingerprint ×
  model CRC × dataset CRC, so repeated artifact runs are cache hits and
  mutated models auto-invalidate.
* **In-flight deduplication** — identical concurrent submissions share
  one execution (the winner computes, the rest share its future).
* **Futures-first execution** — :meth:`submit`/:meth:`submit_many`
  return :class:`AnalysisHandle` objects immediately; *where* the
  measurement runs is a pluggable :mod:`~repro.api.backends` backend
  (``inline`` — the blocking equivalence reference, ``threads`` —
  cross-request parallelism, ``subprocess`` — schema-JSON worker
  processes).  :meth:`run`/:meth:`run_many` are the thin blocking
  wrappers with the pre-redesign call semantics.
* **Sharding** — the scheduler (:mod:`~repro.api.scheduler`) splits
  multi-target requests into per-target (optionally NM-chunked) shards
  on parallel backends and merges them byte-identically, with the store
  deduplicating shards shared between overlapping requests.

Concurrency model: submission is thread-safe; engines serialise
themselves (per-engine locks in :class:`~repro.core.sweep.SweepEngine`),
so independent models sweep concurrently while a warm store hit never
touches any engine lock at all.  The hook stack and autograd mode are
thread-local, so worker threads cannot contaminate each other.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import zlib
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from ..core.noise import site_matcher
from ..core.resilience import ResilienceCurve, ResiliencePoint
from ..core.sweep import SweepEngine, SweepTarget, model_fingerprint
from ..data import Dataset
from ..nn import hooks
from ..nn.hooks import HookRegistry, use_registry
from ..train import evaluate_accuracy
from .backends import ExecutionBackend, make_backend
from .request import AnalysisRequest, AnalysisResult, ModelRef
from .scheduler import merge_shards, plan_shards
from .store import ResultStore, store_key

__all__ = ["ResolvedModel", "ServiceStats", "ShardProgress",
           "AnalysisHandle", "ResilienceService", "default_service",
           "dataset_fingerprint"]


def dataset_fingerprint(dataset: Dataset) -> int:
    """CRC over the evaluated images and labels."""
    crc = zlib.crc32(np.ascontiguousarray(dataset.images))
    return zlib.crc32(np.ascontiguousarray(dataset.labels), crc)


@dataclass
class ResolvedModel:
    """A lazily-loaded (model, full test set) pair behind a :class:`ModelRef`.

    Laziness is what makes warm store hits fast: serving a cached zoo
    request needs the model weights (for the CRC half of the store key)
    but *not* the synthetic test split, whose regeneration costs more
    than the sweep bookkeeping itself.  Zoo splits therefore carry a
    ``dataset_descriptor`` (a stable identity string) so the key can be
    computed without materialising pixels; session datasets are already
    in memory and fingerprint by content (descriptor ``None``).
    """

    ref: ModelRef
    load_model: object            # () -> model
    load_test_set: object         # () -> Dataset
    dataset_descriptor: str | None = None
    _model: object = None
    _test_set: Dataset | None = None

    @property
    def model(self):
        if self._model is None:
            self._model = self.load_model()
        return self._model

    @property
    def test_set(self) -> Dataset:
        if self._test_set is None:
            self._test_set = self.load_test_set()
        return self._test_set

    def eval_set(self, eval_samples: int | None) -> Dataset:
        if eval_samples is None:
            return self.test_set
        return self.test_set.subset(eval_samples)


@dataclass
class ServiceStats:
    """Observable counters (used by tests and ``--json`` consumers)."""

    submitted: int = 0
    store_hits: int = 0        # whole requests served from the store
    deduplicated: int = 0      # requests that joined an in-flight future
    executed: int = 0          # requests actually measured
    sweeps: int = 0            # in-process engine.sweep calls issued
    shards: int = 0            # shard executions dispatched to the backend
    shard_store_hits: int = 0  # shards served from the store (dedup layer)


class ShardProgress:
    """Shard counters shared by every handle of one execution."""

    def __init__(self, total: int = 1):
        self._lock = threading.Lock()
        self.total = total
        self.started = 0
        self.done = 0

    def set_total(self, total: int) -> None:
        with self._lock:
            self.total = total

    def mark_started(self, n: int = 1) -> None:
        with self._lock:
            self.started += n

    def mark_done(self, n: int = 1) -> None:
        with self._lock:
            self.done += n

    def snapshot(self) -> dict:
        with self._lock:
            return {"shards_total": self.total,
                    "shards_started": self.started,
                    "shards_done": self.done}


class AnalysisHandle:
    """One submitted request on its way to (or already holding) a result.

    The futures-first face of the service: ``submit`` returns
    immediately with one of these; :meth:`result` blocks, :meth:`done`
    and :meth:`status` poll, :attr:`progress` exposes shard counters.
    Handles of deduplicated submissions share the winner's future and
    progress.
    """

    #: Status vocabulary, also used verbatim by the HTTP server.
    STATUSES = ("pending", "running", "done", "cached", "error")

    def __init__(self, request: AnalysisRequest, key: str, future: Future,
                 progress: ShardProgress):
        self.request = request
        self.key = key
        self._future = future
        self._progress = progress

    def done(self) -> bool:
        """Whether a result (or an error) is available without blocking."""
        return self._future.done()

    def result(self, timeout: float | None = None) -> AnalysisResult:
        """Block until the result is available (re-raising any error)."""
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None):
        """The execution's exception, or ``None`` (blocks like
        :meth:`result`)."""
        return self._future.exception(timeout)

    def status(self) -> str:
        """One of :data:`STATUSES`; ``cached`` means a store hit."""
        if self._future.done():
            if self._future.exception() is not None:
                return "error"
            return "cached" if self._future.result().from_cache else "done"
        if self._progress.snapshot()["shards_started"] > 0:
            return "running"
        return "pending"

    @property
    def progress(self) -> dict:
        """Shard counters: ``shards_total``/``started``/``done``."""
        return self._progress.snapshot()


def _resolved_future(result: AnalysisResult) -> Future:
    future: Future = Future()
    future.set_result(result)
    return future


@dataclass
class _Job:
    """One accepted (store-missed, non-duplicate) request."""

    index: int
    request: AnalysisRequest
    resolved: ResolvedModel
    model_crc: int
    dataset_crc: int
    key: str
    future: Future = field(default_factory=Future)
    progress: ShardProgress = field(default_factory=ShardProgress)

    @property
    def batch_key(self) -> tuple:
        """Requests sharing this key merge into one execution group."""
        r = self.request
        return (self.resolved.ref.key, self.dataset_crc, r.eval_samples,
                r.noise, r.nm_values, r.na, r.seed, r.baseline_accuracy,
                r.options)


class ResilienceService:
    """Submit :class:`AnalysisRequest` jobs; receive cached-or-measured
    :class:`AnalysisResult` responses (see module docstring).

    Parameters
    ----------
    store:
        A prebuilt :class:`ResultStore`, or ``None`` to build one from
        ``cache_dir`` (default root when that is also ``None``).
    cache_dir:
        Store root directory; ignored when ``store`` is given.
    use_store:
        ``False`` disables persistence entirely (in-memory service).
    backend:
        Execution backend name (``inline``/``threads``/``subprocess``)
        or a prebuilt :class:`~repro.api.backends.ExecutionBackend`.
        Validated through :func:`~repro.api.backends.make_backend` —
        invalid combinations with ``max_parallel`` error loudly.
    max_parallel:
        Shard/request concurrency for the parallel backends; rejected
        for ``inline``.
    nm_chunk:
        Optionally also shard the NM axis into chunks of this many
        values (parallel backends only; merged byte-identically).
    """

    def __init__(self, *, store: ResultStore | None = None,
                 cache_dir: str | None = None, use_store: bool = True,
                 backend: str | ExecutionBackend = "inline",
                 max_parallel: int | None = None,
                 nm_chunk: int | None = None):
        if store is None and use_store:
            store = ResultStore(cache_dir)
        self.store = store
        self.backend = make_backend(backend, max_parallel)
        self.nm_chunk = nm_chunk
        self.stats = ServiceStats()
        self._sessions: dict[str, tuple[object, Dataset]] = {}
        self._resolved: dict[str, ResolvedModel] = {}
        self._engines: dict[tuple, SweepEngine] = {}
        self._inflight: dict[str, tuple[Future, ShardProgress]] = {}
        self._state_lock = threading.Lock()   # maps + stats above

    def close(self) -> None:
        """Shut down the backend's worker pools (if any)."""
        self.backend.close()

    # ------------------------------------------------------------ resolution
    def register(self, name: str, model, dataset: Dataset) -> ModelRef:
        """Register an in-memory (model, test set) pair as a session ref.

        Re-registering a name replaces the pair and drops any engines
        built for it; results remain safe either way because the store
        key carries the model and dataset CRCs, not the name.
        """
        ref = ModelRef(session=name)
        with self._state_lock:
            previous = self._sessions.get(name)
            if previous is not None and (previous[0] is not model
                                         or previous[1] is not dataset):
                self._resolved.pop(ref.key, None)
                self._engines = {key: engine
                                 for key, engine in self._engines.items()
                                 if key[0] != ref.key}
            self._sessions[name] = (model, dataset)
        return ref

    def unregister(self, ref: ModelRef) -> None:
        """Drop a session and every engine built for it (frees the
        engine's cached activation traces).  Stored results survive —
        they are keyed by content, not by the session name."""
        if ref.session is None:
            raise ValueError("only session refs can be unregistered")
        with self._state_lock:
            self._sessions.pop(ref.session, None)
            self._resolved.pop(ref.key, None)
            self._engines = {key: engine
                             for key, engine in self._engines.items()
                             if key[0] != ref.key}

    def entry(self, ref: ModelRef) -> ResolvedModel:
        """Resolve (and cache) the lazy model bundle behind a reference."""
        with self._state_lock:
            resolved = self._resolved.get(ref.key)
        if resolved is not None:
            return resolved
        if ref.session is not None:
            with self._state_lock:
                pair = self._sessions.get(ref.session)
            if pair is None:
                raise KeyError(f"unknown session {ref.session!r}; "
                               f"register it with ResilienceService.register")
            model, dataset = pair
            resolved = ResolvedModel(ref, lambda: model, lambda: dataset)
        else:
            from ..zoo import benchmark_coords, default_test_descriptor
            if ref.benchmark is not None:
                preset, dataset_name = benchmark_coords(ref.benchmark)
            else:
                preset, dataset_name = ref.preset, ref.dataset
            resolved = ResolvedModel(
                ref,
                load_model=lambda: self._zoo_model(preset, dataset_name),
                load_test_set=lambda: self._zoo_test_set(preset,
                                                         dataset_name),
                dataset_descriptor=default_test_descriptor(dataset_name))
        with self._state_lock:
            self._resolved.setdefault(ref.key, resolved)
            return self._resolved[ref.key]

    @staticmethod
    def _zoo_model(preset: str, dataset_name: str):
        """Weights-only when cached; full training run otherwise."""
        from ..zoo import get_trained, load_trained_model
        model = load_trained_model(preset, dataset_name)
        if model is None:
            model = get_trained(preset, dataset_name).model
        return model

    @staticmethod
    def _zoo_test_set(preset: str, dataset_name: str) -> Dataset:
        from ..zoo import default_test_split
        return default_test_split(dataset_name)

    def _dataset_crc(self, resolved: ResolvedModel,
                     eval_samples: int | None) -> int:
        if resolved.dataset_descriptor is not None:
            # Zoo splits are pure functions of their descriptor — no
            # need to materialise pixels just to key the store.
            return zlib.crc32(resolved.dataset_descriptor.encode())
        return dataset_fingerprint(resolved.eval_set(eval_samples))

    def _engine_for(self, resolved: ResolvedModel, dataset_crc: int,
                    request: AnalysisRequest, dataset: Dataset) -> SweepEngine:
        options = request.options
        key = (resolved.ref.key, dataset_crc, request.eval_samples, options)
        with self._state_lock:
            engine = self._engines.get(key)
            if engine is None or engine.model is not resolved.model:
                engine = options.make_engine(resolved.model, dataset)
                self._engines[key] = engine
            return engine

    # ------------------------------------------------------------ submission
    def submit(self, request: AnalysisRequest) -> AnalysisHandle:
        """Accept one request; return its handle immediately.

        With the default ``inline`` backend the measurement completes
        before this returns (the handle is already resolved) — exactly
        the pre-redesign blocking semantics.  On the ``threads`` and
        ``subprocess`` backends the handle resolves asynchronously.
        """
        return self.submit_many([request])[0]

    def submit_many(self, requests) -> list[AnalysisHandle]:
        """Accept several requests, batching compatible executions.

        Requests that share model, dataset, grid, seed, baseline and
        execution options execute as one group over the union of their
        targets (sharded across the backend when it is parallel);
        identical in-flight requests collapse onto one future.  Handles
        come back in submission order.
        """
        if hooks.active_registries():
            # An ambient use_registry(...) scope would compose the
            # caller's transforms into inline measurements — and the
            # store would file them under a clean fingerprint, poisoning
            # every later lookup of the same key.  Worker threads are
            # isolated (the hook stack is thread-local), but the guard
            # holds for every backend so behaviour never depends on
            # where the measurement happens to run.
            raise RuntimeError(
                "ResilienceService cannot accept submissions inside an "
                "active hook-registry scope: ambient transforms would "
                "contaminate stored results; exit the use_registry(...) "
                "block or evaluate directly")
        requests = list(requests)
        handles: list[AnalysisHandle | None] = [None] * len(requests)
        jobs: list[_Job] = []
        for index, request in enumerate(requests):
            with self._state_lock:
                self.stats.submitted += 1
            resolved = self.entry(request.model)
            model_crc = model_fingerprint(resolved.model)
            dataset_crc = self._dataset_crc(resolved, request.eval_samples)
            key = store_key(request.fingerprint(), model_crc, dataset_crc)
            cached = self.store.get(key) if self.store is not None else None
            if cached is not None:
                with self._state_lock:
                    self.stats.store_hits += 1
                handles[index] = AnalysisHandle(
                    request, key, _resolved_future(cached), ShardProgress())
                continue
            with self._state_lock:
                inflight = self._inflight.get(key)
                if inflight is not None:
                    self.stats.deduplicated += 1
                    handles[index] = AnalysisHandle(request, key, *inflight)
                    continue
                job = _Job(index, request, resolved, model_crc,
                           dataset_crc, key)
                self._inflight[key] = (job.future, job.progress)
            jobs.append(job)
            handles[index] = AnalysisHandle(request, key, job.future,
                                            job.progress)
        groups: dict[tuple, list[_Job]] = {}
        for job in jobs:
            groups.setdefault(job.batch_key, []).append(job)
        for group in groups.values():
            self._launch_group(group)
        return handles

    # --------------------------------------------------- blocking wrappers
    def run(self, request: AnalysisRequest) -> AnalysisResult:
        """Blocking wrapper: submit one request and wait for its result."""
        return self.submit(request).result()

    def run_many(self, requests) -> list[AnalysisResult]:
        """Blocking wrapper around :meth:`submit_many` (submission order)."""
        return [handle.result() for handle in self.submit_many(requests)]

    # ------------------------------------------------------------- execution
    def _launch_group(self, group: list[_Job]) -> None:
        """Dispatch one batched group to the backend, sharded if parallel.

        Never blocks on the measurement itself: completion flows through
        future callbacks, so a ``threads``/``subprocess`` submission
        returns while the sweep is still running.
        """
        head = group[0].request
        targets: list[SweepTarget] = []
        seen = set()
        for job in group:
            for target in job.request.targets:
                if target.key not in seen:
                    seen.add(target.key)
                    targets.append(target)
        targets = tuple(targets)
        union = (head if head.targets == targets
                 else dataclasses.replace(head, targets=targets))
        shards = plan_shards(union, targets, parallel=self.backend.parallel,
                             nm_chunk=self.nm_chunk) or [union]
        for job in group:
            job.progress.set_total(len(shards))
        try:
            futures = [self._submit_shard(shard, group,
                                          sharded=len(shards) > 1)
                       for shard in shards]
        except BaseException as exc:  # noqa: BLE001 — delivered via futures
            self._fail_group(group, exc)
            return
        pending = [len(futures)]
        pending_lock = threading.Lock()

        def _on_shard_done(_future: Future) -> None:
            for job in group:
                job.progress.mark_done()
            with pending_lock:
                pending[0] -= 1
                last = pending[0] == 0
            if last:
                self._finish_group(group, union, targets, shards, futures)

        for future in futures:
            future.add_done_callback(_on_shard_done)

    def _submit_shard(self, shard: AnalysisRequest, group: list[_Job],
                      *, sharded: bool) -> Future:
        """One shard: store-dedup, in-flight-dedup, or backend dispatch.

        Sharded sub-requests register a *proxy* future in the in-flight
        map before dispatching, so an identical top-level request (or a
        shard of an overlapping one) joins the live execution, and the
        shard's result is persisted under its own content-addressed key
        before any joiner observes completion.
        """
        if not sharded:
            return self._dispatch(shard, group)
        job = group[0]
        key = store_key(shard.fingerprint(), job.model_crc, job.dataset_crc)
        if any(key == member.key for member in group):
            # The shard is field-identical to one of this group's own
            # requests (e.g. a single-target request batched with a
            # sibling widened the union).  Its key is already in-flight
            # as that *job's* future — which only resolves after every
            # shard completes, so joining it here would deadlock the
            # group on itself.  Dispatch directly; the job-level store
            # put covers this key at finish time.
            return self._dispatch(shard, group)
        cached = self.store.get(key) if self.store is not None else None
        if cached is not None:
            with self._state_lock:
                self.stats.shard_store_hits += 1
            for j in group:
                j.progress.mark_started()
            return _resolved_future(cached)
        proxy: Future = Future()
        progress = ShardProgress()
        with self._state_lock:
            inflight = self._inflight.get(key)
            if inflight is None:
                self._inflight[key] = (proxy, progress)
        if inflight is not None:
            for j in group:
                j.progress.mark_started()
            return inflight[0]
        progress.mark_started()

        def _resolve_proxy(done: Future) -> None:
            progress.mark_done()
            error = done.exception()
            if error is None:
                try:
                    self._check_provenance(done.result(), job)
                except RuntimeError as mismatch:
                    error = mismatch
            if error is None and self.store is not None:
                self.store.put(key, done.result())
            with self._state_lock:
                self._inflight.pop(key, None)
            if error is None:
                proxy.set_result(done.result())
            else:
                proxy.set_exception(error)

        try:
            self._dispatch(shard, group).add_done_callback(_resolve_proxy)
        except BaseException as exc:  # noqa: BLE001 — delivered via the proxy
            with self._state_lock:
                self._inflight.pop(key, None)
            proxy.set_exception(exc)
        return proxy

    def _dispatch(self, shard: AnalysisRequest, group: list[_Job]) -> Future:
        with self._state_lock:
            self.stats.shards += 1
        for job in group:
            job.progress.mark_started()
        return self.backend.submit(shard, self._measure)

    @staticmethod
    def _check_provenance(result: AnalysisResult, job: _Job) -> None:
        """Reject measurements of a model/dataset other than the keyed one.

        In-process backends measure the very objects the key was
        computed from, so this never fires there.  A ``subprocess``
        worker re-resolves the ref in a fresh process — if the parent's
        in-process model has been mutated (e.g. the X2 ablation's
        ``routing_iterations`` edits), the worker measures the pristine
        zoo state and its curves must NOT be filed under the mutated
        fingerprint: that would silently report unmutated results for
        every mutation.
        """
        expected_model = f"{job.model_crc & 0xffffffff:08x}"
        expected_dataset = f"{job.dataset_crc & 0xffffffff:08x}"
        if result.model_fingerprint != expected_model:
            raise RuntimeError(
                f"backend measured model fingerprint "
                f"{result.model_fingerprint}, but the request was keyed on "
                f"{expected_model}: the in-process model differs from what "
                f"the worker resolved (mutated after loading?); use the "
                f"inline or threads backend for in-process model mutations")
        if result.dataset_fingerprint != expected_dataset:
            raise RuntimeError(
                f"backend measured dataset fingerprint "
                f"{result.dataset_fingerprint}, expected {expected_dataset}: "
                f"the worker resolved a different evaluation split")

    def _fail_group(self, group: list[_Job], exc: BaseException) -> None:
        for job in group:
            if not job.future.done():
                job.future.set_exception(exc)
        with self._state_lock:
            for job in group:
                self._inflight.pop(job.key, None)

    def _finish_group(self, group: list[_Job], union: AnalysisRequest,
                      targets: tuple[SweepTarget, ...],
                      shards: list[AnalysisRequest],
                      futures: list[Future]) -> None:
        """Merge completed shards and resolve every job in the group.

        Runs on whichever thread completed the last shard; never raises —
        failures propagate through the job futures.
        """
        try:
            error = next((future.exception() for future in futures
                          if future.exception() is not None), None)
            if error is not None:
                raise error
            results = [future.result() for future in futures]
            for result in results:
                self._check_provenance(result, group[0])
            if len(results) == 1:
                curves = results[0].curves
                elapsed = results[0].elapsed_seconds
            else:
                curves = merge_shards(union, targets, shards, results)
                elapsed = sum(result.elapsed_seconds for result in results)
            baseline = next(iter(curves.values())).baseline_accuracy
            created = time.time()
            for job in group:
                with self._state_lock:
                    self.stats.executed += 1
                result = AnalysisResult(
                    request=job.request,
                    curves={target.key: curves[target.key]
                            for target in job.request.targets},
                    baseline_accuracy=baseline,
                    model_fingerprint=f"{job.model_crc & 0xffffffff:08x}",
                    dataset_fingerprint=f"{job.dataset_crc & 0xffffffff:08x}",
                    created=created,
                    elapsed_seconds=elapsed / len(group))
                if self.store is not None:
                    self.store.put(job.key, result)
                job.future.set_result(result)
            with self._state_lock:
                for job in group:
                    self._inflight.pop(job.key, None)
        except BaseException as exc:  # noqa: BLE001 — re-raised via futures
            self._fail_group(group, exc)

    # ----------------------------------------------------------- measurement
    def _measure(self, request: AnalysisRequest) -> AnalysisResult:
        """Measure exactly ``request`` in this process.

        This is the runner handed to the backend: it may execute on the
        submitting thread (``inline``) or on a pool thread
        (``threads``); the ``subprocess`` backend runs the same logic in
        a worker via :func:`repro.api.backends.worker_main`.  Engine
        access serialises on the engine's own lock, so concurrent
        measurements of *different* engines overlap.
        """
        resolved = self.entry(request.model)
        model_crc = model_fingerprint(resolved.model)
        dataset_crc = self._dataset_crc(resolved, request.eval_samples)
        dataset = resolved.eval_set(request.eval_samples)
        targets = list(request.targets)
        start = time.perf_counter()
        if request.noise == "quantization":
            curves = self._run_quantization(request, resolved, dataset,
                                            targets)
        else:
            engine = self._engine_for(resolved, dataset_crc, request, dataset)
            with self._state_lock:
                self.stats.sweeps += 1
            curves = engine.sweep(
                targets, request.nm_values, na=request.na, seed=request.seed,
                baseline_accuracy=request.baseline_accuracy)
        elapsed = time.perf_counter() - start
        baseline = next(iter(curves.values())).baseline_accuracy
        return AnalysisResult(
            request=request,
            curves={target.key: curves[target.key] for target in targets},
            baseline_accuracy=baseline,
            model_fingerprint=f"{model_crc & 0xffffffff:08x}",
            dataset_fingerprint=f"{dataset_crc & 0xffffffff:08x}",
            created=time.time(),
            elapsed_seconds=elapsed)

    def _run_quantization(self, request: AnalysisRequest,
                          resolved: ResolvedModel, dataset: Dataset,
                          targets) -> dict:
        """Eq. 1 round-trip error swept over word lengths.

        ``nm_values`` holds the bit widths; the error is deterministic
        per value (no RNG), injected through the same hook sites as the
        Gaussian model.  Curve points reuse the ``nm`` axis for the word
        length.
        """
        from ..approx import quantization_noise
        model = resolved.model
        batch_size = request.options.batch_size
        baseline = request.baseline_accuracy
        if baseline is None:
            baseline = evaluate_accuracy(model, dataset,
                                         batch_size=batch_size)
        curves = {}
        for target in targets:
            matcher = site_matcher(
                groups=[target.group],
                layers=None if target.layer is None else [target.layer])
            curve = ResilienceCurve(group=target.group, layer=target.layer,
                                    baseline_accuracy=baseline)
            for bits in request.nm_values:
                registry = HookRegistry()

                def transform(site, value, _bits=int(bits)):
                    return value + quantization_noise(value, _bits)

                registry.add_transform(matcher, transform)
                with use_registry(registry):
                    accuracy = evaluate_accuracy(model, dataset,
                                                 batch_size=batch_size)
                curve.points.append(ResiliencePoint(
                    float(bits), 0.0, accuracy, accuracy - baseline))
            curves[target.key] = curve
        return curves


_default: ResilienceService | None = None
_default_lock = threading.Lock()


def default_service() -> ResilienceService:
    """The process-wide shared service (persistent store, default root).

    The experiment ``run()`` functions and :class:`~repro.core.
    methodology.ReDCaNe` fall back to this instance so a CLI invocation
    that regenerates several artifacts shares one zoo resolution, one
    engine cache and one result store.
    """
    global _default
    with _default_lock:
        if _default is None:
            _default = ResilienceService()
        return _default
