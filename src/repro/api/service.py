"""The job-oriented analysis service fronting the sweep machinery.

:class:`ResilienceService` turns declarative
:class:`~repro.api.request.AnalysisRequest` jobs into
:class:`~repro.api.request.AnalysisResult` responses while owning every
piece of lifecycle the one-shot scripts used to hand-thread:

* **Model/zoo resolution** — benchmark and zoo refs resolve through
  :mod:`repro.zoo` once and stay resident; in-memory models register as
  named *sessions* (:meth:`register`).
* **Engine reuse** — one :class:`~repro.core.sweep.SweepEngine` per
  (model ref, eval subset, execution options), so the prefix-activation
  cache built by one request (e.g. the Fig. 9 group sweep) is reused by
  the next (the Fig. 10 layer refinement) exactly as the methodology's
  Steps 2+4 always shared an engine.
* **Result persistence** — results land in a content-addressed
  :class:`~repro.api.store.ResultStore` keyed by request fingerprint ×
  model CRC × dataset CRC, so repeated artifact runs are cache hits and
  mutated models auto-invalidate.
* **In-flight deduplication** — identical concurrent submissions share
  one execution (the winner computes, the rest block on its future).
* **Sweep batching** — :meth:`submit_many` merges compatible requests
  (same model/grid/seed/options) into a single ``engine.sweep`` call.

Executions are serialised internally (the engines and the ambient hook
registry are not thread-safe); submission is thread-safe.
"""

from __future__ import annotations

import threading
import time
import zlib
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from ..core.noise import site_matcher
from ..core.resilience import ResilienceCurve, ResiliencePoint
from ..core.sweep import SweepEngine, model_fingerprint
from ..data import Dataset
from ..nn import hooks
from ..nn.hooks import HookRegistry, use_registry
from ..train import evaluate_accuracy
from .request import AnalysisRequest, AnalysisResult, ModelRef
from .store import ResultStore, store_key

__all__ = ["ResolvedModel", "ServiceStats", "ResilienceService",
           "default_service", "dataset_fingerprint"]


def dataset_fingerprint(dataset: Dataset) -> int:
    """CRC over the evaluated images and labels."""
    crc = zlib.crc32(np.ascontiguousarray(dataset.images))
    return zlib.crc32(np.ascontiguousarray(dataset.labels), crc)


@dataclass
class ResolvedModel:
    """A lazily-loaded (model, full test set) pair behind a :class:`ModelRef`.

    Laziness is what makes warm store hits fast: serving a cached zoo
    request needs the model weights (for the CRC half of the store key)
    but *not* the synthetic test split, whose regeneration costs more
    than the sweep bookkeeping itself.  Zoo splits therefore carry a
    ``dataset_descriptor`` (a stable identity string) so the key can be
    computed without materialising pixels; session datasets are already
    in memory and fingerprint by content (descriptor ``None``).
    """

    ref: ModelRef
    load_model: object            # () -> model
    load_test_set: object         # () -> Dataset
    dataset_descriptor: str | None = None
    _model: object = None
    _test_set: Dataset | None = None

    @property
    def model(self):
        if self._model is None:
            self._model = self.load_model()
        return self._model

    @property
    def test_set(self) -> Dataset:
        if self._test_set is None:
            self._test_set = self.load_test_set()
        return self._test_set

    def eval_set(self, eval_samples: int | None) -> Dataset:
        if eval_samples is None:
            return self.test_set
        return self.test_set.subset(eval_samples)


@dataclass
class ServiceStats:
    """Observable counters (used by tests and ``--json`` consumers)."""

    submitted: int = 0
    store_hits: int = 0
    deduplicated: int = 0
    executed: int = 0      # requests actually measured
    sweeps: int = 0        # engine.sweep calls issued (batching merges these)


@dataclass
class _Job:
    """One accepted request on its way to execution."""

    index: int
    request: AnalysisRequest
    resolved: ResolvedModel
    model_crc: int
    dataset_crc: int
    key: str
    future: Future = field(default_factory=Future)

    @property
    def batch_key(self) -> tuple:
        """Requests sharing this key merge into one ``engine.sweep``."""
        r = self.request
        return (self.resolved.ref.key, self.dataset_crc, r.eval_samples,
                r.noise, r.nm_values, r.na, r.seed, r.baseline_accuracy,
                r.options)


class ResilienceService:
    """Submit :class:`AnalysisRequest` jobs; receive cached-or-measured
    :class:`AnalysisResult` responses (see module docstring).

    Parameters
    ----------
    store:
        A prebuilt :class:`ResultStore`, or ``None`` to build one from
        ``cache_dir`` (default root when that is also ``None``).
    cache_dir:
        Store root directory; ignored when ``store`` is given.
    use_store:
        ``False`` disables persistence entirely (in-memory service).
    """

    def __init__(self, *, store: ResultStore | None = None,
                 cache_dir: str | None = None, use_store: bool = True):
        if store is None and use_store:
            store = ResultStore(cache_dir)
        self.store = store
        self.stats = ServiceStats()
        self._sessions: dict[str, tuple[object, Dataset]] = {}
        self._resolved: dict[str, ResolvedModel] = {}
        self._engines: dict[tuple, SweepEngine] = {}
        self._inflight: dict[str, Future] = {}
        self._state_lock = threading.Lock()   # maps above
        self._run_lock = threading.Lock()     # engines + hook registry

    # ------------------------------------------------------------ resolution
    def register(self, name: str, model, dataset: Dataset) -> ModelRef:
        """Register an in-memory (model, test set) pair as a session ref.

        Re-registering a name replaces the pair and drops any engines
        built for it; results remain safe either way because the store
        key carries the model and dataset CRCs, not the name.
        """
        ref = ModelRef(session=name)
        with self._state_lock:
            previous = self._sessions.get(name)
            if previous is not None and (previous[0] is not model
                                         or previous[1] is not dataset):
                self._resolved.pop(ref.key, None)
                self._engines = {key: engine
                                 for key, engine in self._engines.items()
                                 if key[0] != ref.key}
            self._sessions[name] = (model, dataset)
        return ref

    def unregister(self, ref: ModelRef) -> None:
        """Drop a session and every engine built for it (frees the
        engine's cached activation traces).  Stored results survive —
        they are keyed by content, not by the session name."""
        if ref.session is None:
            raise ValueError("only session refs can be unregistered")
        with self._state_lock:
            self._sessions.pop(ref.session, None)
            self._resolved.pop(ref.key, None)
            self._engines = {key: engine
                             for key, engine in self._engines.items()
                             if key[0] != ref.key}

    def entry(self, ref: ModelRef) -> ResolvedModel:
        """Resolve (and cache) the lazy model bundle behind a reference."""
        with self._state_lock:
            resolved = self._resolved.get(ref.key)
        if resolved is not None:
            return resolved
        if ref.session is not None:
            with self._state_lock:
                pair = self._sessions.get(ref.session)
            if pair is None:
                raise KeyError(f"unknown session {ref.session!r}; "
                               f"register it with ResilienceService.register")
            model, dataset = pair
            resolved = ResolvedModel(ref, lambda: model, lambda: dataset)
        else:
            from ..zoo import benchmark_coords, default_test_descriptor
            if ref.benchmark is not None:
                preset, dataset_name = benchmark_coords(ref.benchmark)
            else:
                preset, dataset_name = ref.preset, ref.dataset
            resolved = ResolvedModel(
                ref,
                load_model=lambda: self._zoo_model(preset, dataset_name),
                load_test_set=lambda: self._zoo_test_set(preset,
                                                         dataset_name),
                dataset_descriptor=default_test_descriptor(dataset_name))
        with self._state_lock:
            self._resolved.setdefault(ref.key, resolved)
            return self._resolved[ref.key]

    @staticmethod
    def _zoo_model(preset: str, dataset_name: str):
        """Weights-only when cached; full training run otherwise."""
        from ..zoo import get_trained, load_trained_model
        model = load_trained_model(preset, dataset_name)
        if model is None:
            model = get_trained(preset, dataset_name).model
        return model

    @staticmethod
    def _zoo_test_set(preset: str, dataset_name: str) -> Dataset:
        from ..zoo import default_test_split
        return default_test_split(dataset_name)

    def _engine_for(self, job: _Job, dataset: Dataset) -> SweepEngine:
        options = job.request.options
        key = (job.resolved.ref.key, job.dataset_crc,
               job.request.eval_samples, options)
        with self._state_lock:
            engine = self._engines.get(key)
            if engine is None or engine.model is not job.resolved.model:
                engine = options.make_engine(job.resolved.model, dataset)
                self._engines[key] = engine
            return engine

    # ------------------------------------------------------------ submission
    def submit(self, request: AnalysisRequest) -> AnalysisResult:
        """Serve one request from the store or by measuring it."""
        return self.submit_many([request])[0]

    def submit_many(self, requests) -> list[AnalysisResult]:
        """Serve several requests, batching compatible sweeps.

        Requests that share model, dataset, grid, seed, baseline and
        execution options execute as a single ``engine.sweep`` over the
        union of their targets; identical in-flight requests collapse to
        one execution.  Results come back in submission order.
        """
        requests = list(requests)
        results: list[AnalysisResult | None] = [None] * len(requests)
        jobs: list[_Job] = []
        waits: list[tuple[int, Future]] = []
        for index, request in enumerate(requests):
            with self._state_lock:
                self.stats.submitted += 1
            resolved = self.entry(request.model)
            model_crc = model_fingerprint(resolved.model)
            if resolved.dataset_descriptor is not None:
                # Zoo splits are pure functions of their descriptor —
                # no need to materialise pixels just to key the store.
                dataset_crc = zlib.crc32(
                    resolved.dataset_descriptor.encode())
            else:
                dataset_crc = dataset_fingerprint(
                    resolved.eval_set(request.eval_samples))
            key = store_key(request.fingerprint(), model_crc, dataset_crc)
            cached = self.store.get(key) if self.store is not None else None
            if cached is not None:
                with self._state_lock:
                    self.stats.store_hits += 1
                results[index] = cached
                continue
            with self._state_lock:
                future = self._inflight.get(key)
                if future is not None:
                    self.stats.deduplicated += 1
                    waits.append((index, future))
                    continue
                job = _Job(index, request, resolved, model_crc,
                           dataset_crc, key)
                self._inflight[key] = job.future
            jobs.append(job)
        if jobs:
            self._execute(jobs)
        for index, future in waits:
            results[index] = future.result()
        for job in jobs:
            results[job.index] = job.future.result()
        return results

    # ------------------------------------------------------------- execution
    def _execute(self, jobs: list[_Job]) -> None:
        """Run accepted jobs grouped into batched sweeps.

        A failing group fails every remaining job's future too (instead
        of leaving them unset for concurrent waiters to block on); the
        caller surfaces the error through ``future.result()``.
        """
        groups: dict[tuple, list[_Job]] = {}
        for job in jobs:
            groups.setdefault(job.batch_key, []).append(job)
        error: BaseException | None = None
        for group in groups.values():
            if error is None:
                try:
                    self._run_group(group)
                except BaseException as exc:  # noqa: BLE001 — re-raised via futures
                    error = exc
            if error is not None:
                for job in group:
                    if not job.future.done():
                        job.future.set_exception(error)
            with self._state_lock:
                for job in group:
                    self._inflight.pop(job.key, None)

    def _run_group(self, group: list[_Job]) -> None:
        head = group[0].request
        targets = []
        seen = set()
        for job in group:
            for target in job.request.targets:
                if target.key not in seen:
                    seen.add(target.key)
                    targets.append(target)
        start = time.perf_counter()
        with self._run_lock:
            if hooks.active_registries():
                # Under the run lock no service sweep is live, so any
                # active registry is a caller's use_registry(...) scope.
                # The engine would silently fall back to the naive
                # strategy with those transforms composed into the
                # accuracies, and the store would file that under a
                # clean fingerprint — poisoning every later lookup of
                # the same key.  The service owns noise injection.
                raise RuntimeError(
                    "ResilienceService cannot execute inside an active "
                    "hook-registry scope: ambient transforms would "
                    "contaminate stored results; exit the "
                    "use_registry(...) block or evaluate directly")
            dataset = group[0].resolved.eval_set(head.eval_samples)
            if head.noise == "quantization":
                curves = self._run_quantization(group[0], dataset, targets)
            else:
                engine = self._engine_for(group[0], dataset)
                self.stats.sweeps += 1
                curves = engine.sweep(
                    targets, head.nm_values, na=head.na, seed=head.seed,
                    baseline_accuracy=head.baseline_accuracy)
        elapsed = time.perf_counter() - start
        baseline = next(iter(curves.values())).baseline_accuracy
        created = time.time()
        for job in group:
            with self._state_lock:
                self.stats.executed += 1
            result = AnalysisResult(
                request=job.request,
                curves={target.key: curves[target.key]
                        for target in job.request.targets},
                baseline_accuracy=baseline,
                model_fingerprint=f"{job.model_crc & 0xffffffff:08x}",
                dataset_fingerprint=f"{job.dataset_crc & 0xffffffff:08x}",
                created=created,
                elapsed_seconds=elapsed / len(group))
            if self.store is not None:
                self.store.put(job.key, result)
            job.future.set_result(result)

    def _run_quantization(self, job: _Job, dataset: Dataset, targets) -> dict:
        """Eq. 1 round-trip error swept over word lengths.

        ``nm_values`` holds the bit widths; the error is deterministic
        per value (no RNG), injected through the same hook sites as the
        Gaussian model.  Curve points reuse the ``nm`` axis for the word
        length.
        """
        from ..approx import quantization_noise
        request = job.request
        model = job.resolved.model
        batch_size = request.options.batch_size
        baseline = request.baseline_accuracy
        if baseline is None:
            baseline = evaluate_accuracy(model, dataset,
                                         batch_size=batch_size)
        curves = {}
        for target in targets:
            matcher = site_matcher(
                groups=[target.group],
                layers=None if target.layer is None else [target.layer])
            curve = ResilienceCurve(group=target.group, layer=target.layer,
                                    baseline_accuracy=baseline)
            for bits in request.nm_values:
                registry = HookRegistry()

                def transform(site, value, _bits=int(bits)):
                    return value + quantization_noise(value, _bits)

                registry.add_transform(matcher, transform)
                with use_registry(registry):
                    accuracy = evaluate_accuracy(model, dataset,
                                                 batch_size=batch_size)
                curve.points.append(ResiliencePoint(
                    float(bits), 0.0, accuracy, accuracy - baseline))
            curves[target.key] = curve
        return curves


_default: ResilienceService | None = None
_default_lock = threading.Lock()


def default_service() -> ResilienceService:
    """The process-wide shared service (persistent store, default root).

    The experiment ``run()`` functions and :class:`~repro.core.
    methodology.ReDCaNe` fall back to this instance so a CLI invocation
    that regenerates several artifacts shares one zoo resolution, one
    engine cache and one result store.
    """
    global _default
    with _default_lock:
        if _default is None:
            _default = ResilienceService()
        return _default
