"""The job-oriented analysis service fronting the sweep machinery.

:class:`ResilienceService` turns declarative
:class:`~repro.api.request.AnalysisRequest` jobs into
:class:`~repro.api.request.AnalysisResult` responses while owning every
piece of lifecycle the one-shot scripts used to hand-thread:

* **Model/zoo resolution** — benchmark and zoo refs resolve through
  :mod:`repro.zoo` once and stay resident; in-memory models register as
  named *sessions* (:meth:`register`).
* **Engine reuse** — one :class:`~repro.core.sweep.SweepEngine` per
  (model ref, eval subset, execution options), so the prefix-activation
  cache built by one request (e.g. the Fig. 9 group sweep) is reused by
  the next (the Fig. 10 layer refinement) exactly as the methodology's
  Steps 2+4 always shared an engine.
* **Result persistence** — results land in a content-addressed
  :class:`~repro.api.store.ResultStore` keyed by request fingerprint ×
  model CRC × dataset CRC, so repeated artifact runs are cache hits and
  mutated models auto-invalidate.
* **In-flight deduplication** — identical concurrent submissions share
  one execution (the winner computes, the rest share its future).
* **Futures-first execution** — :meth:`submit`/:meth:`submit_many`
  return :class:`AnalysisHandle` objects immediately; *where* the
  measurement runs is a pluggable :mod:`~repro.api.backends` backend
  (``inline`` — the blocking equivalence reference, ``threads`` —
  cross-request parallelism, ``subprocess`` — schema-JSON worker
  processes, ``procpool`` — persistent warm workers).
  :meth:`run`/:meth:`run_many` are the thin blocking wrappers with the
  pre-redesign call semantics.
* **Sharding** — the scheduler (:mod:`~repro.api.scheduler`) splits
  multi-target requests into per-target (optionally NM-chunked) shards
  on parallel backends and merges them byte-identically, with the store
  deduplicating shards shared between overlapping requests.
* **Progressive results** — every accepted submission owns a typed
  :class:`~repro.api.events.EventLog` (``queued``/``started``/
  ``shard_done``/``progress``/``done``/``error``/``cancelled``);
  :meth:`AnalysisHandle.events` streams it, and
  :meth:`AnalysisHandle.partial` snapshots the **merged-so-far**
  :class:`~repro.api.request.PartialResult` the moment any shard lands.
  The final merge is the same code path as ever, so streamed curves end
  byte-identical to the blocking result.
* **Cancellation** — :meth:`AnalysisHandle.cancel` sets the shard
  group's cooperative :class:`~repro.api.events.CancelToken`: queued
  shards drop without starting, running in-process shards stop at the
  next :class:`~repro.core.sweep.SweepEngine` stage boundary, and the
  handle resolves with :class:`~repro.api.events.AnalysisCancelled`.
  Nothing incomplete is ever persisted, so a cancelled-then-resubmitted
  request reproduces the uncancelled curves exactly.
* **Backpressure** — dispatch flows through a bounded priority
  :class:`~repro.api.scheduler.ShardQueue`; with ``queue_limit`` set, a
  saturated service refuses new submissions with
  :class:`~repro.api.scheduler.QueueFull` (HTTP 429 + ``Retry-After``
  upstream) instead of queuing unboundedly, and ``priority=`` lets
  urgent triage requests overtake queued batch work.
* **Multi-tenancy** — requests carrying ``options.client_id`` dispatch
  through per-tenant sub-queues drained by deficit round-robin
  (``tenant_weights`` sets the shares), so one tenant's 36-shard batch
  cannot head-of-line-block another tenant's single-target request.
  With ``starvation_threshold`` set, a tenant starved past it preempts
  a running lower-priority shard at the sweep engine's next checkpoint:
  the measured-so-far points are parked, a remainder request covering
  only the unmeasured points requeues, and the assembled result is
  byte-identical to an unpreempted run (stateless noise streams).
  Preemption is not a fault — it burns no retry budget and never feeds
  the degradation tracker.

Concurrency model: submission is thread-safe; engines serialise
themselves (per-engine locks in :class:`~repro.core.sweep.SweepEngine`),
so independent models sweep concurrently while a warm store hit never
touches any engine lock at all.  The hook stack and autograd mode are
thread-local, so worker threads cannot contaminate each other.
"""

from __future__ import annotations

import dataclasses
import logging
import threading
import time
import zlib
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..core.noise import site_matcher
from ..core.resilience import ResilienceCurve, ResiliencePoint
from ..core.sweep import (SweepCancelled, SweepEngine, SweepPreempted,
                          SweepTarget, model_fingerprint)
from ..data import Dataset
from ..nn import hooks
from ..nn.hooks import HookRegistry, use_registry
from ..train import evaluate_accuracy
from .backends import ExecutionBackend, make_backend
from .events import AnalysisCancelled, CancelToken, EventLog, PreemptToken
from .request import AnalysisRequest, AnalysisResult, ModelRef, PartialResult
from .resilience import (BackendError, FaultPlan, RetryPolicy, ServiceHealth,
                         ShardPoisoned, WorkerPreempted,
                         dispatch_with_retries, retry_call)
from .scheduler import ShardQueue, merge_partial, merge_shards, plan_shards
from .store import ResultStore, store_key

__all__ = ["ResolvedModel", "ServiceStats", "ShardProgress",
           "AnalysisHandle", "ResilienceService", "default_service",
           "dataset_fingerprint"]

logger = logging.getLogger("repro.api.service")


def dataset_fingerprint(dataset: Dataset) -> int:
    """CRC over the evaluated images and labels."""
    crc = zlib.crc32(np.ascontiguousarray(dataset.images))
    return zlib.crc32(np.ascontiguousarray(dataset.labels), crc)


@dataclass
class ResolvedModel:
    """A lazily-loaded (model, full test set) pair behind a :class:`ModelRef`.

    Laziness is what makes warm store hits fast: serving a cached zoo
    request needs the model weights (for the CRC half of the store key)
    but *not* the synthetic test split, whose regeneration costs more
    than the sweep bookkeeping itself.  Zoo splits therefore carry a
    ``dataset_descriptor`` (a stable identity string) so the key can be
    computed without materialising pixels; session datasets are already
    in memory and fingerprint by content (descriptor ``None``).
    """

    ref: ModelRef
    load_model: object            # () -> model
    load_test_set: object         # () -> Dataset
    dataset_descriptor: str | None = None
    _model: object = None
    _test_set: Dataset | None = None

    @property
    def model(self):
        if self._model is None:
            self._model = self.load_model()
        return self._model

    @property
    def test_set(self) -> Dataset:
        if self._test_set is None:
            self._test_set = self.load_test_set()
        return self._test_set

    def eval_set(self, eval_samples: int | None) -> Dataset:
        if eval_samples is None:
            return self.test_set
        return self.test_set.subset(eval_samples)


@dataclass
class ServiceStats:
    """Observable counters (used by tests and ``--json`` consumers)."""

    submitted: int = 0
    store_hits: int = 0        # whole requests served from the store
    deduplicated: int = 0      # requests that joined an in-flight future
    executed: int = 0          # requests actually measured
    sweeps: int = 0            # in-process engine.sweep calls issued
    shards: int = 0            # shard executions dispatched to the backend
    shard_store_hits: int = 0  # shards served from the store (dedup layer)
    cancelled: int = 0         # requests resolved via cancellation
    rejected: int = 0          # submissions refused by queue backpressure
    preempted: int = 0         # shard parks taken for starved tenants


class ShardProgress:
    """Shard counters shared by every handle of one execution."""

    def __init__(self, total: int = 1):
        self._lock = threading.Lock()
        self.total = total
        self.started = 0
        self.done = 0

    def set_total(self, total: int) -> None:
        with self._lock:
            self.total = total

    def mark_started(self, n: int = 1) -> None:
        with self._lock:
            self.started += n

    def mark_done(self, n: int = 1) -> None:
        with self._lock:
            self.done += n

    def snapshot(self) -> dict:
        with self._lock:
            return {"shards_total": self.total,
                    "shards_started": self.started,
                    "shards_done": self.done}


class AnalysisHandle:
    """One submitted request on its way to (or already holding) a result.

    The futures-first face of the service: ``submit`` returns
    immediately with one of these; :meth:`result` blocks, :meth:`done`
    and :meth:`status` poll, :attr:`progress` exposes shard counters,
    :meth:`events` streams the typed lifecycle log, :meth:`partial`
    snapshots the merged-so-far curves, and :meth:`cancel` requests
    cooperative cancellation of the whole shard group.  Handles of
    deduplicated submissions share the winner's future, progress and
    event log.
    """

    #: Status vocabulary, also used verbatim by the HTTP server.
    STATUSES = ("pending", "running", "done", "cached", "error", "cancelled")

    def __init__(self, request: AnalysisRequest, key: str, future: Future,
                 progress: ShardProgress, *, events: EventLog | None = None,
                 partial_fn=None, cancel_fn=None):
        self.request = request
        self.key = key
        self._future = future
        self._progress = progress
        self._events = events
        self._partial_fn = partial_fn
        self._cancel_fn = cancel_fn

    def done(self) -> bool:
        """Whether a result (or an error) is available without blocking."""
        return self._future.done()

    def result(self, timeout: float | None = None) -> AnalysisResult:
        """Block until the result is available (re-raising any error;
        a cancelled submission raises :class:`~repro.api.events.
        AnalysisCancelled`)."""
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None):
        """The execution's exception, or ``None`` (blocks like
        :meth:`result`)."""
        return self._future.exception(timeout)

    def status(self) -> str:
        """One of :data:`STATUSES`; ``cached`` means a store hit."""
        if self._future.done():
            error = self._future.exception()
            if error is not None:
                return ("cancelled" if isinstance(error, AnalysisCancelled)
                        else "error")
            return "cached" if self._future.result().from_cache else "done"
        if self._progress.snapshot()["shards_started"] > 0:
            return "running"
        return "pending"

    @property
    def progress(self) -> dict:
        """Shard counters: ``shards_total``/``started``/``done``."""
        return self._progress.snapshot()

    # --------------------------------------------------------- progressive
    def events(self, after: int = 0, timeout: float | None = None, *,
               embed_partial: bool = True):
        """Stream this submission's :class:`~repro.api.events.
        AnalysisEvent` records (``seq > after``) until the terminal
        event (or ``timeout`` seconds of silence — resume with
        ``after=<last seen seq>``).  Replays losslessly: a consumer that
        attaches after completion still sees the full history.
        ``embed_partial=False`` slims each ``shard_done`` to a
        ``partial_superseded_by`` pointer instead of the embedded
        merged-so-far payload (fetch :meth:`partial` for the snapshot).
        """
        if self._events is not None:
            yield from self._events.stream(after=after, timeout=timeout,
                                           embed_partial=embed_partial)
            return
        # Handles without a log (joined onto a bare in-flight shard
        # future): degrade to one synthesised terminal event.
        if after >= 1:
            return
        try:
            error = self._future.exception(timeout)
        except TimeoutError:
            return
        log = EventLog(self.key)
        if error is None:
            kind, payload = "done", {"from_cache":
                                     self._future.result().from_cache}
        elif isinstance(error, AnalysisCancelled):
            kind, payload = "cancelled", {"message": str(error)}
        else:
            kind, payload = "error", {"message": str(error)}
        yield log.emit(kind, payload)

    def partial(self) -> PartialResult:
        """The merged-so-far :class:`~repro.api.request.PartialResult`.

        Monotonic: successive snapshots only ever gain (target, NM)
        points, and the complete snapshot's curves are byte-identical to
        :meth:`result`'s.
        """
        if self._partial_fn is not None:
            return self._partial_fn()
        if self._future.done() and self._future.exception() is None:
            return PartialResult.from_result(
                self._future.result(),
                shards_total=max(1, self._progress.snapshot()["shards_total"]))
        return PartialResult(
            request=self.request, curves={},
            shards_total=max(1, self._progress.snapshot()["shards_total"]),
            shards_done=0)

    def cancel(self) -> bool:
        """Request cooperative cancellation of this submission.

        Returns ``True`` when cancellation was initiated, ``False`` when
        the request already resolved (done/cached/error — a no-op) or the
        handle has no execution to cancel.  Queued shards drop without
        starting; running in-process shards stop at the engine's next
        stage boundary; the handle then resolves with
        :class:`~repro.api.events.AnalysisCancelled`.  Note that
        cancellation propagates to every handle sharing this execution
        (deduplicated submissions, batched group members).
        """
        if self._future.done() or self._cancel_fn is None:
            return False
        return self._cancel_fn()


def _resolved_future(result: AnalysisResult) -> Future:
    future: Future = Future()
    future.set_result(result)
    return future


def _cached_handle(request: AnalysisRequest, key: str,
                   result: AnalysisResult) -> AnalysisHandle:
    """A pre-resolved handle for a store hit (closed event log)."""
    log = EventLog.resolved(key, "done", {"from_cache": True})
    return AnalysisHandle(
        request, key, _resolved_future(result), ShardProgress(),
        events=log, partial_fn=lambda: PartialResult.from_result(result))


@dataclass
class _GroupRun:
    """Shared execution state of one batched shard group.

    ``shards``/``results`` are parallel lists in plan order (``None``
    until a shard completes); ``token`` is the group's cooperative
    cancellation flag.  Every job of the group points here, which is
    what makes partial snapshots and cancellation group-wide.
    """

    token: CancelToken = field(default_factory=CancelToken)
    shards: list = field(default_factory=list)
    results: list = field(default_factory=list)
    lock: threading.Lock = field(default_factory=threading.Lock)
    degraded_announced: bool = False

    def record(self, index: int, result: AnalysisResult) -> None:
        with self.lock:
            self.results[index] = result

    def completed(self) -> list:
        with self.lock:
            return list(self.results)

    def announce_degraded_once(self) -> bool:
        """True exactly once per group (gates the ``degraded`` event)."""
        with self.lock:
            if self.degraded_announced:
                return False
            self.degraded_announced = True
            return True


@dataclass
class _Job:
    """One accepted (store-missed, non-duplicate) request."""

    index: int
    request: AnalysisRequest
    resolved: ResolvedModel
    model_crc: int
    dataset_crc: int
    key: str
    priority: int = 0
    future: Future = field(default_factory=Future)
    progress: ShardProgress = field(default_factory=ShardProgress)
    events: EventLog | None = None
    run: _GroupRun | None = None

    @property
    def batch_key(self) -> tuple:
        """Requests sharing this key merge into one execution group."""
        r = self.request
        return (self.resolved.ref.key, self.dataset_crc, r.eval_samples,
                r.noise, r.nm_values, r.na, r.seed, r.baseline_accuracy,
                r.options, self.priority)


@dataclass
class _InflightEntry:
    """What the in-flight map shares with duplicate submissions."""

    future: Future
    progress: ShardProgress
    job: _Job | None = None


class ResilienceService:
    """Submit :class:`AnalysisRequest` jobs; receive cached-or-measured
    :class:`AnalysisResult` responses (see module docstring).

    Parameters
    ----------
    store:
        A prebuilt :class:`ResultStore`, or ``None`` to build one from
        ``cache_dir`` (default root when that is also ``None``).
    cache_dir:
        Store root directory; ignored when ``store`` is given.
    use_store:
        ``False`` disables persistence entirely (in-memory service).
    store_layout:
        Filesystem geometry of a store built here (ignored when
        ``store`` is given): ``"local"`` (default, single-node flat
        directory) or ``"shared"`` (a fleet-mounted root; see
        :class:`~repro.api.store.SharedFSLayout`).
    backend:
        Execution backend name (``inline``/``threads``/``subprocess``/
        ``procpool``/``remote-pool``) or a prebuilt
        :class:`~repro.api.backends.ExecutionBackend`.  Validated through
        :func:`~repro.api.backends.make_backend` — invalid combinations
        with ``max_parallel`` error loudly.
    max_parallel:
        Shard/request concurrency for the parallel backends; rejected
        for ``inline``.
    workers:
        ``HOST:PORT`` agent addresses for the ``remote-pool`` backend
        (required there, rejected for every other backend).
    nm_chunk:
        Optionally also shard the NM axis into chunks of this many
        values (parallel backends only; merged byte-identically).
    queue_limit:
        Saturation bound on the dispatch backlog.  ``None`` (default)
        queues unboundedly; with a limit, a service whose queue already
        holds that many waiting shards refuses new submissions with
        :class:`~repro.api.scheduler.QueueFull` carrying a
        ``retry_after`` backoff hint (HTTP 429 + ``Retry-After`` when
        served remotely).  Admission is accept-bounded: an admitted
        submission's own shard fan-out may transiently exceed the limit
        (large requests stay servable); store hits and deduplicated
        joins are never refused — only work that would actually queue.
    retry_policy:
        How failed shards requeue (:class:`~repro.api.resilience.
        RetryPolicy`: backoff spacing + retryable-error classification).
        ``None`` uses the defaults.  The retry *budget* is per-request:
        ``ExecutionOptions.max_retries``.
    degrade_threshold:
        Consecutive infrastructure failures (worker crashes/timeouts,
        transient ``OSError``) after which the service latches
        *degraded* and measures remaining shards on the in-process
        fallback path (byte-identical; loud ``degraded`` event +
        ``/v1/health`` flag) instead of erroring jobs against a
        collapsed pool.  ``None`` (default) disables degradation.
    fault_plan:
        A :class:`~repro.api.resilience.FaultPlan` for the chaos
        harness; requires a ``chaos:<inner>`` backend name (or wraps a
        prebuilt backend).  Test/benchmark machinery, never production.
    tenant_weights:
        Per-tenant deficit-round-robin shares (``{"name": weight}``, a
        tenant being ``options.client_id``; unlisted tenants weigh 1.0).
        A weight-2 tenant drains two shards per round for every one of a
        weight-1 tenant.  Single-tenant traffic is unaffected — the DRR
        degenerates to the plain priority heap.
    starvation_threshold:
        Seconds a tenant (with queued work and nothing running) may wait
        on a saturated queue before the fair scheduler preempts a
        running lower-priority shard of another tenant (park at the
        engine's next checkpoint; remainder requeues).  ``None``
        (default) disables preemption.
    """

    def __init__(self, *, store: ResultStore | None = None,
                 cache_dir: str | None = None, use_store: bool = True,
                 store_layout: str = "local",
                 backend: str | ExecutionBackend = "inline",
                 max_parallel: int | None = None,
                 workers=None,
                 nm_chunk: int | None = None,
                 queue_limit: int | None = None,
                 retry_policy: RetryPolicy | None = None,
                 degrade_threshold: int | None = None,
                 fault_plan: FaultPlan | None = None,
                 tenant_weights: dict | None = None,
                 starvation_threshold: float | None = None):
        if store is None and use_store:
            store = ResultStore(cache_dir, layout=store_layout)
        self.store = store
        self.backend = make_backend(backend, max_parallel,
                                    fault_plan=fault_plan, workers=workers)
        self.nm_chunk = nm_chunk
        self.queue = ShardQueue(self.backend, limit=queue_limit,
                                weights=tenant_weights,
                                starvation_threshold=starvation_threshold)
        self.stats = ServiceStats()
        self.retry_policy = retry_policy or RetryPolicy()
        self.health = ServiceHealth(degrade_threshold)
        self._degraded_pool: ThreadPoolExecutor | None = None
        self._sessions: dict[str, tuple[object, Dataset]] = {}
        self._resolved: dict[str, ResolvedModel] = {}
        self._engines: dict[tuple, SweepEngine] = {}
        self._inflight: dict[str, _InflightEntry] = {}
        self._state_lock = threading.Lock()   # maps + stats above

    def queue_snapshot(self) -> dict:
        """Observable dispatch-queue state (queued/running/capacity/
        limit/saturated/worker_restarts) — what ``/v1/health`` reports."""
        return self.queue.snapshot()

    @property
    def degraded(self) -> bool:
        """Whether the pool-collapse fallback has latched (see
        ``degrade_threshold``)."""
        return self.health.degraded

    def close(self) -> None:
        """Shut down the fair-scheduler monitor and the backend's
        worker pools (if any)."""
        self.queue.close()
        self.backend.close()
        with self._state_lock:
            pool, self._degraded_pool = self._degraded_pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # ------------------------------------------------------------ resolution
    def register(self, name: str, model, dataset: Dataset) -> ModelRef:
        """Register an in-memory (model, test set) pair as a session ref.

        Re-registering a name replaces the pair and drops any engines
        built for it; results remain safe either way because the store
        key carries the model and dataset CRCs, not the name.
        """
        ref = ModelRef(session=name)
        with self._state_lock:
            previous = self._sessions.get(name)
            if previous is not None and (previous[0] is not model
                                         or previous[1] is not dataset):
                self._resolved.pop(ref.key, None)
                self._engines = {key: engine
                                 for key, engine in self._engines.items()
                                 if key[0] != ref.key}
            self._sessions[name] = (model, dataset)
        return ref

    def unregister(self, ref: ModelRef) -> None:
        """Drop a session and every engine built for it (frees the
        engine's cached activation traces).  Stored results survive —
        they are keyed by content, not by the session name."""
        if ref.session is None:
            raise ValueError("only session refs can be unregistered")
        with self._state_lock:
            self._sessions.pop(ref.session, None)
            self._resolved.pop(ref.key, None)
            self._engines = {key: engine
                             for key, engine in self._engines.items()
                             if key[0] != ref.key}

    def entry(self, ref: ModelRef) -> ResolvedModel:
        """Resolve (and cache) the lazy model bundle behind a reference."""
        with self._state_lock:
            resolved = self._resolved.get(ref.key)
        if resolved is not None:
            return resolved
        if ref.session is not None:
            with self._state_lock:
                pair = self._sessions.get(ref.session)
            if pair is None:
                raise KeyError(f"unknown session {ref.session!r}; "
                               f"register it with ResilienceService.register")
            model, dataset = pair
            resolved = ResolvedModel(ref, lambda: model, lambda: dataset)
        else:
            from ..zoo import benchmark_coords, default_test_descriptor
            if ref.benchmark is not None:
                preset, dataset_name = benchmark_coords(ref.benchmark)
            else:
                preset, dataset_name = ref.preset, ref.dataset
            resolved = ResolvedModel(
                ref,
                load_model=lambda: self._zoo_model(preset, dataset_name),
                load_test_set=lambda: self._zoo_test_set(preset,
                                                         dataset_name),
                dataset_descriptor=default_test_descriptor(dataset_name))
        with self._state_lock:
            self._resolved.setdefault(ref.key, resolved)
            return self._resolved[ref.key]

    @staticmethod
    def _zoo_model(preset: str, dataset_name: str):
        """Weights-only when cached; full training run otherwise."""
        from ..zoo import get_trained, load_trained_model
        model = load_trained_model(preset, dataset_name)
        if model is None:
            model = get_trained(preset, dataset_name).model
        return model

    @staticmethod
    def _zoo_test_set(preset: str, dataset_name: str) -> Dataset:
        from ..zoo import default_test_split
        return default_test_split(dataset_name)

    def _dataset_crc(self, resolved: ResolvedModel,
                     eval_samples: int | None) -> int:
        if resolved.dataset_descriptor is not None:
            # Zoo splits are pure functions of their descriptor — no
            # need to materialise pixels just to key the store.
            return zlib.crc32(resolved.dataset_descriptor.encode())
        return dataset_fingerprint(resolved.eval_set(eval_samples))

    def _engine_for(self, resolved: ResolvedModel, dataset_crc: int,
                    request: AnalysisRequest, dataset: Dataset) -> SweepEngine:
        options = request.options
        # client_id never changes what an engine computes — keying it
        # would give every tenant a duplicate engine (and a cold
        # prefix-activation cache) for identical work.
        if options.client_id is not None:
            options = dataclasses.replace(options, client_id=None)
        key = (resolved.ref.key, dataset_crc, request.eval_samples, options)
        with self._state_lock:
            engine = self._engines.get(key)
            if engine is None or engine.model is not resolved.model:
                engine = options.make_engine(resolved.model, dataset)
                self._engines[key] = engine
            return engine

    # ------------------------------------------------------------ submission
    def submit(self, request: AnalysisRequest, *,
               priority: int = 0) -> AnalysisHandle:
        """Accept one request; return its handle immediately.

        With the default ``inline`` backend the measurement completes
        before this returns (the handle is already resolved) — exactly
        the pre-redesign blocking semantics.  On the parallel backends
        the handle resolves asynchronously; ``priority`` (higher wins)
        orders its shards ahead of lower-priority queued work.
        """
        return self.submit_many([request], priority=priority)[0]

    def submit_many(self, requests, *,
                    priority: int = 0) -> list[AnalysisHandle]:
        """Accept several requests, batching compatible executions.

        Requests that share model, dataset, grid, seed, baseline and
        execution options execute as one group over the union of their
        targets (sharded across the backend when it is parallel);
        identical in-flight requests collapse onto one future.  Handles
        come back in submission order.

        Backpressure: when the service was built with ``queue_limit``
        and the dispatch backlog is already saturated, the whole batch
        is refused with :class:`~repro.api.scheduler.QueueFull` *before*
        anything launches — store hits and duplicate joins alone never
        trip it, and an admitted batch's own fan-out never does either
        (accept-bounded admission).  The verdict and the capacity
        reservation are one atomic step
        (:meth:`~repro.api.scheduler.ShardQueue.admit`), so concurrent
        submitters racing an almost-full queue cannot all observe the
        same free slot and collectively overshoot the limit.
        """
        if hooks.active_registries():
            # An ambient use_registry(...) scope would compose the
            # caller's transforms into inline measurements — and the
            # store would file them under a clean fingerprint, poisoning
            # every later lookup of the same key.  Worker threads are
            # isolated (the hook stack is thread-local), but the guard
            # holds for every backend so behaviour never depends on
            # where the measurement happens to run.
            # lint: allow(exc-unclassified): boundary guard raised to the caller before any dispatch; it never reaches the retry loop's classification
            raise RuntimeError(
                "ResilienceService cannot accept submissions inside an "
                "active hook-registry scope: ambient transforms would "
                "contaminate stored results; exit the use_registry(...) "
                "block or evaluate directly")
        requests = list(requests)
        handles: list[AnalysisHandle | None] = [None] * len(requests)
        jobs: list[_Job] = []
        for index, request in enumerate(requests):
            with self._state_lock:
                self.stats.submitted += 1
            resolved = self.entry(request.model)
            model_crc = model_fingerprint(resolved.model)
            dataset_crc = self._dataset_crc(resolved, request.eval_samples)
            key = store_key(request.fingerprint(), model_crc, dataset_crc)
            cached = self.store.get(key) if self.store is not None else None
            if cached is not None:
                with self._state_lock:
                    self.stats.store_hits += 1
                handles[index] = _cached_handle(request, key, cached)
                continue
            with self._state_lock:
                inflight = self._inflight.get(key)
                if inflight is not None:
                    self.stats.deduplicated += 1
                    handles[index] = self._joined_handle(request, key,
                                                         inflight)
                    continue
                job = _Job(index, request, resolved, model_crc,
                           dataset_crc, key, priority=priority,
                           events=EventLog(key))
                self._inflight[key] = _InflightEntry(job.future,
                                                     job.progress, job)
            jobs.append(job)
            handles[index] = self._job_handle(job)
        admission = None
        if jobs:
            try:
                # All-or-nothing admission for the measured subset: a
                # refused batch leaves no dangling accepted jobs behind.
                # The verdict reserves its slots atomically, so parallel
                # submitters cannot all pass on the same free capacity;
                # the reservation is released once the batch's own
                # shards are really in the queue.
                admission = self.queue.admit(len(jobs))
            except BaseException as refusal:
                with self._state_lock:
                    self.stats.rejected += len(jobs)
                    for job in jobs:
                        self._inflight.pop(job.key, None)
                for job in jobs:
                    # A concurrent identical submission may have already
                    # dedup-joined one of these jobs in the window since
                    # it entered the in-flight map; resolving the future
                    # (instead of abandoning it) propagates the refusal
                    # to any such joiner rather than hanging it forever.
                    job.future.set_exception(refusal)
                    job.events.emit("error", {"message": str(refusal)})
                raise
        groups: dict[tuple, list[_Job]] = {}
        for job in jobs:
            job.events.emit("queued", {"targets": len(job.request.targets),
                                       "priority": job.priority})
            groups.setdefault(job.batch_key, []).append(job)
        try:
            for group in groups.values():
                self._launch_group(group)
        finally:
            if admission is not None:
                admission.release()
        return handles

    def _job_handle(self, job: _Job) -> AnalysisHandle:
        return AnalysisHandle(
            job.request, job.key, job.future, job.progress,
            events=job.events,
            partial_fn=lambda: self._job_partial(job),
            cancel_fn=lambda: self._cancel_job(job))

    def _joined_handle(self, request: AnalysisRequest, key: str,
                       inflight: _InflightEntry) -> AnalysisHandle:
        """A duplicate submission's handle: shares the winner's state."""
        job = inflight.job
        if job is not None:
            return AnalysisHandle(
                request, key, inflight.future, inflight.progress,
                events=job.events,
                partial_fn=lambda: self._job_partial(job),
                cancel_fn=lambda: self._cancel_job(job))
        # Joined onto a bare shard proxy: no log of its own; the handle
        # degrades to synthesised terminal events and result-level
        # partials.
        return AnalysisHandle(request, key, inflight.future,
                              inflight.progress)

    # --------------------------------------------------- blocking wrappers
    def run(self, request: AnalysisRequest, *,
            priority: int = 0) -> AnalysisResult:
        """Blocking wrapper: submit one request and wait for its result."""
        return self.submit(request, priority=priority).result()

    def run_many(self, requests, *, priority: int = 0) -> list[AnalysisResult]:
        """Blocking wrapper around :meth:`submit_many` (submission order)."""
        return [handle.result()
                for handle in self.submit_many(requests, priority=priority)]

    # ------------------------------------------------- progressive results
    def _job_partial(self, job: _Job) -> PartialResult:
        """The merged-so-far snapshot of one job (see module docstring)."""
        if job.future.done() and job.future.exception() is None:
            # Completed: serve the final object itself so the snapshot is
            # trivially byte-identical to the blocking result.
            return PartialResult.from_result(
                job.future.result(),
                shards_total=max(1, job.progress.snapshot()["shards_total"]))
        run = job.run
        if run is None or not run.shards:
            return PartialResult(
                request=job.request, curves={},
                shards_total=max(1, job.progress.snapshot()["shards_total"]),
                shards_done=0)
        curves, done = merge_partial(job.request, run.shards,
                                     run.completed())
        baseline = (next(iter(curves.values())).baseline_accuracy
                    if curves else None)
        return PartialResult(request=job.request, curves=curves,
                             shards_total=len(run.shards), shards_done=done,
                             baseline_accuracy=baseline,
                             complete=done == len(run.shards))

    def _cancel_job(self, job: _Job) -> bool:
        """Set the job's group cancellation flag (handle ``cancel``)."""
        if job.future.done():
            return False
        run = job.run
        if run is None:
            return False
        run.token.set()
        self.queue.drop_cancelled()
        return True

    # ------------------------------------------------------------- execution
    def _launch_group(self, group: list[_Job]) -> None:
        """Dispatch one batched group through the shard queue.

        Never blocks on the measurement itself: completion flows through
        future callbacks, so a parallel-backend submission returns while
        the sweep is still running.  Every shard completion lands in the
        group's :class:`_GroupRun` and is announced as a ``shard_done``
        event carrying each job's merged-so-far partial.
        """
        head = group[0].request
        targets: list[SweepTarget] = []
        seen = set()
        for job in group:
            for target in job.request.targets:
                if target.key not in seen:
                    seen.add(target.key)
                    targets.append(target)
        targets = tuple(targets)
        union = (head if head.targets == targets
                 else dataclasses.replace(head, targets=targets))
        shards = plan_shards(union, targets, parallel=self.backend.parallel,
                             nm_chunk=self.nm_chunk) or [union]
        run = _GroupRun()
        run.shards = list(shards)
        run.results = [None] * len(shards)
        for job in group:
            job.run = run
            job.progress.set_total(len(shards))
        try:
            futures = [self._submit_shard(shard, group, index,
                                          sharded=len(shards) > 1)
                       for index, shard in enumerate(shards)]
        except BaseException as exc:  # noqa: BLE001 — delivered via futures
            self._fail_group(group, exc)
            return
        pending = [len(futures)]
        pending_lock = threading.Lock()

        def _make_on_done(index: int):
            def _on_shard_done(future: Future) -> None:
                if future.exception() is None:
                    # Record BEFORE announcing, so the shard_done
                    # event's partial always includes its own shard.
                    run.record(index, future.result())
                for job in group:
                    job.progress.mark_done()
                if future.exception() is None:
                    shard = shards[index]
                    for job in group:
                        job.events.emit("shard_done", {
                            "shard": index,
                            "targets": [[t.group, t.layer]
                                        for t in shard.targets],
                            "nm_values": list(shard.nm_values),
                            **job.progress.snapshot(),
                            "partial": self._job_partial(job).to_payload()})
                with pending_lock:
                    pending[0] -= 1
                    last = pending[0] == 0
                if last:
                    self._finish_group(group, union, targets, shards,
                                       futures)
            return _on_shard_done

        for index, future in enumerate(futures):
            future.add_done_callback(_make_on_done(index))

    def _mark_group_started(self, group: list[_Job]) -> None:
        """Progress counters + honest started/progress events."""
        for job in group:
            job.progress.mark_started()
            counters = job.progress.snapshot()
            kind = ("started" if counters["shards_started"] == 1
                    else "progress")
            job.events.emit(kind, counters)

    def _submit_shard(self, shard: AnalysisRequest, group: list[_Job],
                      index: int, *, sharded: bool) -> Future:
        """One shard: store-dedup, in-flight-dedup, or queued dispatch.

        Sharded sub-requests register a *proxy* future in the in-flight
        map before dispatching, so an identical top-level request (or a
        shard of an overlapping one) joins the live execution, and the
        shard's result is persisted under its own content-addressed key
        before any joiner observes completion.
        """
        if not sharded:
            return self._dispatch(shard, group, index)
        job = group[0]
        key = store_key(shard.fingerprint(), job.model_crc, job.dataset_crc)
        if any(key == member.key for member in group):
            # The shard is field-identical to one of this group's own
            # requests (e.g. a single-target request batched with a
            # sibling widened the union).  Its key is already in-flight
            # as that *job's* future — which only resolves after every
            # shard completes, so joining it here would deadlock the
            # group on itself.  Dispatch directly; the job-level store
            # put covers this key at finish time.
            return self._dispatch(shard, group, index)
        cached = self.store.get(key) if self.store is not None else None
        if cached is not None:
            with self._state_lock:
                self.stats.shard_store_hits += 1
            self._mark_group_started(group)
            return _resolved_future(cached)
        proxy: Future = Future()
        progress = ShardProgress()
        with self._state_lock:
            inflight = self._inflight.get(key)
            if inflight is None:
                self._inflight[key] = _InflightEntry(proxy, progress)
        if inflight is not None:
            self._mark_group_started(group)
            return inflight.future
        progress.mark_started()

        def _resolve_proxy(done: Future) -> None:
            # Runs as a Future done-callback: anything that escapes here
            # is merely *logged* by concurrent.futures, leaving the
            # proxy unresolved and the in-flight entry leaked (the
            # request would hang in "running" forever).  Every failure —
            # provenance mismatch, or the store refusing/failing the
            # write (disk full, the completeness guard on a torn
            # result) — must therefore flow out through the proxy.
            progress.mark_done()
            error = done.exception()
            result = None
            if error is None:
                result = done.result()
                try:
                    self._check_provenance(result, job)
                    if self.store is not None:
                        # Only ever a *complete* shard result:
                        # cancellations and failures arrive as
                        # exceptions and never reach the store.
                        self._store_put(key, result, shard.options)
                except BaseException as failure:  # noqa: BLE001 — via proxy
                    error = failure
            with self._state_lock:
                self._inflight.pop(key, None)
            if error is None:
                proxy.set_result(result)
            else:
                proxy.set_exception(error)

        try:
            self._dispatch(shard, group,
                           index).add_done_callback(_resolve_proxy)
        except BaseException as exc:  # noqa: BLE001 — delivered via the proxy
            with self._state_lock:
                self._inflight.pop(key, None)
            proxy.set_exception(exc)
        return proxy

    def _dispatch(self, shard: AnalysisRequest, group: list[_Job],
                  index: int = 0) -> Future:
        """One shard's fault-tolerant execution (see module docstring).

        Wraps queue dispatch in :func:`~repro.api.resilience.
        dispatch_with_retries`: a retryable failure (worker crash,
        watchdog timeout, transient ``OSError``) requeues the shard up
        to ``options.max_retries`` times with the service's
        :class:`~repro.api.resilience.RetryPolicy` backoff, announcing
        each relaunch as a ``shard_retry`` event; exhaustion raises
        :class:`~repro.api.resilience.ShardPoisoned` with full attempt
        provenance.  Every attempt outcome also feeds the degradation
        tracker — once it latches, remaining launches bypass the
        collapsed backend and measure on the in-process fallback
        (byte-identical by the stateless noise-stream guarantee).
        """
        with self._state_lock:
            self.stats.shards += 1
        run = group[0].run
        token = run.token if run is not None else None
        options = shard.options
        describe = f"{shard.fingerprint()[:12]}#{index}"

        def runner(request: AnalysisRequest) -> AnalysisResult:
            return self._measure(request, cancel=token)

        started = [False]

        def mark_started() -> None:
            # Exactly one started/progress tick per shard, no matter
            # how many attempts it takes to actually begin measuring.
            if not started[0]:
                started[0] = True
                self._mark_group_started(group)

        def launch(attempt: int) -> Future:
            on_start = None if started[0] else mark_started
            if self.health.degraded:
                self._announce_degraded(group, run)
                return self._run_degraded(shard, runner, on_start=on_start)
            return self._launch_preemptible(shard, group, index,
                                            cancel=token, on_start=on_start)

        def on_retry(attempt: int, error: BaseException,
                     delay: float) -> None:
            logger.warning(
                "shard %s attempt %d/%d failed (%s: %s); retrying "
                "in %.2fs", describe, attempt, options.max_retries + 1,
                type(error).__name__, error, delay)
            self._record_health(error, group, run)
            for job in group:
                job.events.emit("shard_retry", {
                    "shard": index, "attempt": attempt,
                    "max_retries": options.max_retries,
                    "error": f"{type(error).__name__}: {error}",
                    "delay_seconds": delay})

        def on_outcome(error: BaseException | None) -> None:
            # The terminal attempt's failure never passes through
            # on_retry; unwrap poisoning so it still counts as the
            # infrastructure loss it was.
            if isinstance(error, ShardPoisoned):
                error = error.__cause__
            self._record_health(error, group, run)

        return dispatch_with_retries(
            launch, policy=self.retry_policy,
            max_retries=options.max_retries, describe=describe,
            should_abort=token.is_set if token is not None else None,
            on_retry=on_retry, on_outcome=on_outcome)

    # ------------------------------------------------------------ preemption
    def _launch_preemptible(self, shard: AnalysisRequest, group: list[_Job],
                            index: int, *, cancel, on_start) -> Future:
        """One queue dispatch of ``shard`` that survives fair-scheduler
        preemption.

        Each segment carries a fresh per-attempt
        :class:`~repro.api.events.PreemptToken`: in-process measurements
        observe it at the sweep engine's checkpoints and raise
        :class:`~repro.core.sweep.SweepPreempted` carrying the
        measured-so-far curves, which are **parked** here; procpool
        workers are SIGKILLed by the token's hook and surface
        :class:`~repro.api.resilience.WorkerPreempted` (their in-flight
        points are lost — re-measured identically).  Either way a
        remainder request covering only the still-unmeasured (target,
        NM) points requeues with a fresh token, and the final
        :meth:`_assemble` pass reproduces the unpreempted result
        byte-for-byte (every point derives statelessly per (seed, site,
        batch)).  Preemption resolves *inside* one retry attempt: the
        returned future never surfaces a preemption error, so the retry
        layer, the retry budget and the degradation tracker never see
        one.
        """
        outer: Future = Future()
        parked: dict = {}            # (target.key, nm) -> ResiliencePoint

        def submit_segment(request: AnalysisRequest) -> None:
            ptoken = PreemptToken()

            def runner(req: AnalysisRequest,
                       _token=ptoken) -> AnalysisResult:
                return self._measure(req, cancel=cancel, preempt=_token)

            try:
                inner = self.queue.submit(request, runner,
                                          priority=group[0].priority,
                                          cancel=cancel, on_start=on_start,
                                          preempt=ptoken)
            except BaseException as exc:  # noqa: BLE001 — via the future
                outer.set_exception(exc)
                return
            inner.add_done_callback(
                lambda done, _req=request, _tok=ptoken:
                finish(done, _req, _tok))

        def finish(done: Future, request: AnalysisRequest,
                   ptoken: PreemptToken) -> None:
            error = done.exception()
            if error is None:
                try:
                    outer.set_result(self._assemble(shard, parked,
                                                    done.result()))
                except BaseException as exc:  # noqa: BLE001 — via the future
                    outer.set_exception(exc)
                return
            if isinstance(error, SweepPreempted):
                fresh = self._park_partial(error.partial, parked)
            elif isinstance(error, WorkerPreempted):
                fresh = 0            # the killed worker's points are gone
            else:
                outer.set_exception(error)
                return
            remainder = self._remainder_request(shard, parked) or shard
            reason = ptoken.reason or str(error)
            self._announce_preempted(group, index, fresh, reason)
            logger.info("shard %s#%d preempted (%s); parked %d fresh "
                        "point(s), requeueing %d target(s) × %d NM",
                        shard.fingerprint()[:12], index, reason, fresh,
                        len(remainder.targets), len(remainder.nm_values))
            submit_segment(remainder)

        submit_segment(shard)
        return outer

    @staticmethod
    def _park_partial(partial: dict, parked: dict) -> int:
        """Fold a parked segment's measured points into the accumulator;
        returns how many were new."""
        fresh = 0
        for key, curve in (partial or {}).items():
            for point in curve.points:
                slot = (key, float(point.nm))
                if slot not in parked:
                    parked[slot] = point
                    fresh += 1
        return fresh

    @staticmethod
    def _remainder_request(shard: AnalysisRequest,
                           parked: dict) -> AnalysisRequest | None:
        """The sub-request covering exactly the unmeasured points.

        Targets with every NM parked drop out; the NM axis keeps the
        original order restricted to values some remaining target still
        needs (a target whose parked coverage overlaps the union simply
        re-measures a few points — identical values, no harm).  Returns
        ``None`` when nothing is missing.
        """
        missing_targets = []
        needed = set()
        for target in shard.targets:
            missing = [nm for nm in shard.nm_values
                       if (target.key, float(nm)) not in parked]
            if missing:
                missing_targets.append(target)
                needed.update(missing)
        if not missing_targets:
            return None
        return dataclasses.replace(
            shard, targets=tuple(missing_targets),
            nm_values=tuple(nm for nm in shard.nm_values if nm in needed))

    @staticmethod
    def _assemble(shard: AnalysisRequest, parked: dict,
                  result: AnalysisResult) -> AnalysisResult:
        """Merge parked points with the final segment's result into the
        full-shard result (byte-identical to an unpreempted run)."""
        if not parked:
            return result
        curves = {}
        for target in shard.targets:
            segment = result.curves.get(target.key)
            measured = {float(point.nm): point
                        for point in (segment.points if segment is not None
                                      else [])}
            curve = ResilienceCurve(group=target.group, layer=target.layer,
                                    baseline_accuracy=result.baseline_accuracy)
            for nm in shard.nm_values:
                point = parked.get((target.key, float(nm)),
                                   measured.get(float(nm)))
                if point is None:
                    raise BackendError(
                        f"preempted shard reassembly lost NM={nm} for "
                        f"target {target.key!r}: neither parked nor in "
                        f"the remainder result")
                curve.points.append(point)
            curves[target.key] = curve
        return dataclasses.replace(result, request=shard, curves=curves)

    def _announce_preempted(self, group: list[_Job], index: int,
                            points_parked: int, reason: str) -> None:
        with self._state_lock:
            self.stats.preempted += 1
        for job in group:
            job.events.emit("preempted", {"shard": index,
                                          "points_parked": points_parked,
                                          "reason": reason})

    # ------------------------------------------------- graceful degradation
    def _record_health(self, error: BaseException | None,
                       group: list[_Job], run: _GroupRun | None) -> None:
        if self.health.record(error):
            logger.warning(
                "service degraded: %d consecutive infrastructure "
                "failures (last: %s: %s); remaining shards fall back to "
                "in-process execution", self.health.degrade_threshold,
                type(error).__name__, error)
            self._announce_degraded(group, run)

    def _announce_degraded(self, group: list[_Job],
                           run: _GroupRun | None) -> None:
        """Emit the loud ``degraded`` event, once per shard group."""
        if run is None or not run.announce_degraded_once():
            return
        snapshot = self.health.snapshot()
        for job in group:
            job.events.emit("degraded", snapshot)

    def _run_degraded(self, shard: AnalysisRequest, runner,
                      on_start=None) -> Future:
        """Measure one shard on the in-process fallback pool.

        Bypasses the (collapsed) backend entirely; results are
        byte-identical to any backend's because every noise stream
        derives statelessly per (seed, site, batch).
        """
        with self._state_lock:
            if self._degraded_pool is None:
                self._degraded_pool = ThreadPoolExecutor(
                    max_workers=max(1, int(self.backend.parallel)),
                    thread_name_prefix="repro-degraded")
            pool = self._degraded_pool

        def wrapped() -> AnalysisResult:
            if on_start is not None:
                on_start()
            return runner(shard)

        return pool.submit(wrapped)

    def _store_put(self, key: str, result: AnalysisResult,
                   options) -> None:
        """Persist with the retry policy: a transient store-write
        ``OSError`` (full disk, flaky network mount) is retried with
        backoff instead of failing a fully-measured request; a
        persistent one re-raises *itself* after the budget (never
        wrapped — the caller sees the real error)."""
        retry_call(lambda: self.store.put(key, result),
                   policy=self.retry_policy,
                   max_retries=options.max_retries,
                   describe=f"store put {key[:16]}")

    @staticmethod
    def _check_provenance(result: AnalysisResult, job: _Job) -> None:
        """Reject measurements of a model/dataset other than the keyed one.

        In-process backends measure the very objects the key was
        computed from, so this never fires there.  A ``subprocess``
        worker re-resolves the ref in a fresh process — if the parent's
        in-process model has been mutated (e.g. the X2 ablation's
        ``routing_iterations`` edits), the worker measures the pristine
        zoo state and its curves must NOT be filed under the mutated
        fingerprint: that would silently report unmutated results for
        every mutation.
        """
        expected_model = f"{job.model_crc & 0xffffffff:08x}"
        expected_dataset = f"{job.dataset_crc & 0xffffffff:08x}"
        if result.model_fingerprint != expected_model:
            raise BackendError(
                f"backend measured model fingerprint "
                f"{result.model_fingerprint}, but the request was keyed on "
                f"{expected_model}: the in-process model differs from what "
                f"the worker resolved (mutated after loading?); use the "
                f"inline or threads backend for in-process model mutations")
        if result.dataset_fingerprint != expected_dataset:
            raise BackendError(
                f"backend measured dataset fingerprint "
                f"{result.dataset_fingerprint}, expected {expected_dataset}: "
                f"the worker resolved a different evaluation split")

    def _fail_group(self, group: list[_Job], exc: BaseException) -> None:
        cancelled = isinstance(exc, (AnalysisCancelled, SweepCancelled))
        if cancelled and not isinstance(exc, AnalysisCancelled):
            exc = AnalysisCancelled(str(exc))
        for job in group:
            if not job.future.done():
                job.future.set_exception(exc)
                with self._state_lock:
                    if cancelled:
                        self.stats.cancelled += 1
            job.events.emit("cancelled" if cancelled else "error",
                            {"message": str(exc)})
        with self._state_lock:
            for job in group:
                self._inflight.pop(job.key, None)

    def _finish_group(self, group: list[_Job], union: AnalysisRequest,
                      targets: tuple[SweepTarget, ...],
                      shards: list[AnalysisRequest],
                      futures: list[Future]) -> None:
        """Merge completed shards and resolve every job in the group.

        Runs on whichever thread completed the last shard; never raises —
        failures propagate through the job futures.
        """
        try:
            error = next((future.exception() for future in futures
                          if future.exception() is not None), None)
            if error is not None:
                raise error
            results = [future.result() for future in futures]
            for result in results:
                self._check_provenance(result, group[0])
            if len(results) == 1:
                curves = results[0].curves
                elapsed = results[0].elapsed_seconds
            else:
                curves = merge_shards(union, targets, shards, results)
                elapsed = sum(result.elapsed_seconds for result in results)
            baseline = next(iter(curves.values())).baseline_accuracy
            created = time.time()
            for job in group:
                with self._state_lock:
                    self.stats.executed += 1
                result = AnalysisResult(
                    request=job.request,
                    curves={target.key: curves[target.key]
                            for target in job.request.targets},
                    baseline_accuracy=baseline,
                    model_fingerprint=f"{job.model_crc & 0xffffffff:08x}",
                    dataset_fingerprint=f"{job.dataset_crc & 0xffffffff:08x}",
                    created=created,
                    elapsed_seconds=elapsed / len(group))
                if self.store is not None:
                    self._store_put(job.key, result, job.request.options)
                job.future.set_result(result)
                job.events.emit("done",
                                {"from_cache": False,
                                 "elapsed_seconds": result.elapsed_seconds})
            with self._state_lock:
                for job in group:
                    self._inflight.pop(job.key, None)
        except BaseException as exc:  # noqa: BLE001 — re-raised via futures
            self._fail_group(group, exc)

    # ----------------------------------------------------------- measurement
    def _measure(self, request: AnalysisRequest,
                 cancel: CancelToken | None = None,
                 preempt: PreemptToken | None = None) -> AnalysisResult:
        """Measure exactly ``request`` in this process.

        This is the runner handed to the backend: it may execute on the
        submitting thread (``inline``) or on a pool thread
        (``threads``); the ``subprocess``/``procpool`` backends run the
        same logic in workers via :func:`repro.api.backends.worker_main`.
        Engine access serialises on the engine's own lock, so concurrent
        measurements of *different* engines overlap.  ``cancel`` is the
        group's cooperative flag, polled by the sweep engine at stage
        boundaries; ``preempt`` is the fair scheduler's per-attempt
        park flag, polled at the engine's preemption checkpoints
        (out-of-process workers observe neither and rely on the
        supervisor kill path instead).
        """
        resolved = self.entry(request.model)
        model_crc = model_fingerprint(resolved.model)
        dataset_crc = self._dataset_crc(resolved, request.eval_samples)
        dataset = resolved.eval_set(request.eval_samples)
        targets = list(request.targets)
        should_cancel = None if cancel is None else cancel.is_set
        should_preempt = None if preempt is None else preempt.is_set
        start = time.perf_counter()
        if request.noise == "quantization":
            curves = self._run_quantization(request, resolved, dataset,
                                            targets,
                                            should_cancel=should_cancel)
        else:
            engine = self._engine_for(resolved, dataset_crc, request, dataset)
            with self._state_lock:
                self.stats.sweeps += 1
            curves = engine.sweep(
                targets, request.nm_values, na=request.na, seed=request.seed,
                baseline_accuracy=request.baseline_accuracy,
                should_cancel=should_cancel, should_preempt=should_preempt)
        elapsed = time.perf_counter() - start
        baseline = next(iter(curves.values())).baseline_accuracy
        return AnalysisResult(
            request=request,
            curves={target.key: curves[target.key] for target in targets},
            baseline_accuracy=baseline,
            model_fingerprint=f"{model_crc & 0xffffffff:08x}",
            dataset_fingerprint=f"{dataset_crc & 0xffffffff:08x}",
            created=time.time(),
            elapsed_seconds=elapsed)

    def _run_quantization(self, request: AnalysisRequest,
                          resolved: ResolvedModel, dataset: Dataset,
                          targets, should_cancel=None) -> dict:
        """Eq. 1 round-trip error swept over word lengths.

        ``nm_values`` holds the bit widths; the error is deterministic
        per value (no RNG), injected through the same hook sites as the
        Gaussian model.  Curve points reuse the ``nm`` axis for the word
        length.  ``should_cancel`` is polled per (target, word length)
        point, mirroring the sweep engine's checkpoints.
        """
        from ..approx import quantization_noise
        model = resolved.model
        batch_size = request.options.batch_size
        baseline = request.baseline_accuracy
        if baseline is None:
            baseline = evaluate_accuracy(model, dataset,
                                         batch_size=batch_size)
        curves = {}
        for target in targets:
            matcher = site_matcher(
                groups=[target.group],
                layers=None if target.layer is None else [target.layer])
            curve = ResilienceCurve(group=target.group, layer=target.layer,
                                    baseline_accuracy=baseline)
            for bits in request.nm_values:
                if should_cancel is not None and should_cancel():
                    raise SweepCancelled(
                        "quantization sweep cancelled at a word-length "
                        "boundary")
                registry = HookRegistry()

                def transform(site, value, _bits=int(bits)):
                    return value + quantization_noise(value, _bits)

                registry.add_transform(matcher, transform)
                with use_registry(registry):
                    accuracy = evaluate_accuracy(model, dataset,
                                                 batch_size=batch_size)
                curve.points.append(ResiliencePoint(
                    float(bits), 0.0, accuracy, accuracy - baseline))
            curves[target.key] = curve
        return curves


_default: ResilienceService | None = None
_default_lock = threading.Lock()


def default_service() -> ResilienceService:
    """The process-wide shared service (persistent store, default root).

    The experiment ``run()`` functions and :class:`~repro.core.
    methodology.ReDCaNe` fall back to this instance so a CLI invocation
    that regenerates several artifacts shares one zoo resolution, one
    engine cache and one result store.
    """
    global _default
    with _default_lock:
        if _default is None:
            _default = ResilienceService()
        return _default
