"""Typed lifecycle events for progressive analysis results.

The futures-first service (ISSUE 4) told a client *that* a request was
running; this module is the vocabulary for telling it *what has landed so
far*.  Every submission owns an append-only :class:`EventLog` into which
the service and scheduler emit :class:`AnalysisEvent` records:

``queued``
    The request was accepted (store-missed, not a duplicate) and is
    waiting for dispatch capacity.
``started``
    The first shard of the request began measuring.
``shard_done``
    One shard completed; the payload carries the shard's coordinates and
    the request's **merged-so-far** :class:`~repro.api.request.
    PartialResult` payload, so a consumer holds usable partial curves the
    moment the first shard lands (the paper's Step 3 grouping decisions
    only need early curve shape).
``progress``
    Shard counters moved without a curve landing (another shard started).
``done`` / ``error`` / ``cancelled``
    Terminal: the job resolved.  Exactly one terminal event closes every
    log, which is what lets :meth:`EventLog.stream` (and the HTTP event
    stream built on it) terminate deterministically.

Events are schema-versioned JSON documents (the same
``{"schema": SCHEMA_VERSION}`` convention as requests and results), so
the chunked ``GET /v1/events/<job>`` wire format is nothing bespoke —
each line of the stream is one ``AnalysisEvent.to_json()`` document.

Ordering guarantees: ``seq`` is 1-based and strictly increasing per log;
a ``shard_done`` event's partial payload always includes the shard the
event announces (the result is recorded before the event is emitted);
consumers that disconnect resume losslessly with ``after=<last seq>``.

Cancellation rides the same lifecycle: :class:`CancelToken` is the
cooperative flag a handle's ``cancel()`` sets, checked by the shard
queue before dispatch (unstarted shards drop) and by
:class:`~repro.core.sweep.SweepEngine` at stage boundaries (running
shards stop at the next checkpoint); :class:`AnalysisCancelled` is the
exception cancelled futures resolve with.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from dataclasses import dataclass, field

from .request import SCHEMA_VERSION, SchemaError

__all__ = ["EVENT_KINDS", "TERMINAL_EVENTS", "AnalysisCancelled",
           "AnalysisEvent", "CancelToken", "PreemptToken", "EventLog"]

#: Every event kind a log may carry, in rough lifecycle order.
#: ``shard_retry`` announces one shard's failed attempt being requeued
#: (payload: shard coordinates, attempt counter, classified error,
#: backoff delay); ``degraded`` announces the service latching its
#: pool-collapse fallback — remaining shards measure on the in-process
#: inline path (see :mod:`repro.api.resilience`); ``preempted``
#: (non-terminal) announces one shard parking at a checkpoint for a
#: starved tenant — its measured-so-far points are kept and a remainder
#: shard requeues (payload: shard coordinates, points parked, reason);
#: ``node_lost`` (non-terminal, coordinator-synthesized) announces a
#: fleet node dying mid-job — the stream splices to the job's new owner
#: (payload: the lost node URL, the error, whether the job was
#: resubmitted; see :mod:`repro.api.cluster`).
EVENT_KINDS: tuple[str, ...] = ("queued", "started", "shard_done",
                                "shard_retry", "progress", "degraded",
                                "preempted", "node_lost", "done", "error",
                                "cancelled")

#: Kinds that close a log; exactly one terminates every submission.
TERMINAL_EVENTS: frozenset[str] = frozenset({"done", "error", "cancelled"})


class AnalysisCancelled(RuntimeError):
    """The request was cancelled before a result could be produced.

    Raised by :meth:`~repro.api.service.AnalysisHandle.result` on a
    cancelled submission; also what dropped (never-started) shard
    futures resolve with.
    """


class CancelToken:
    """A cooperative, one-way cancellation flag shared by a shard group.

    Set once via :meth:`set`; the queue checks it before dispatching a
    shard, and in-process measurements poll :meth:`is_set` at the sweep
    engine's stage boundaries.  Never un-sets.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def set(self) -> None:
        self._event.set()

    def is_set(self) -> bool:
        return self._event.is_set()


class PreemptToken:
    """A cooperative park-at-next-checkpoint flag for one shard attempt.

    The fair scheduler sets it (with a human-readable ``reason``) when a
    starved tenant needs the capacity slot.  In-process measurements
    poll :meth:`is_set` at the sweep engine's preemption checkpoints;
    out-of-process backends register a kill hook via :meth:`add_hook`
    so the set reaches the worker process immediately (hooks fire at
    most once, and fire immediately if the token was already set when
    registered).  Unlike :class:`CancelToken` a preempt token is
    per-attempt: the requeued remainder shard gets a fresh one.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._hooks: list = []
        self.reason: str = ""

    def set(self, reason: str = "") -> None:
        with self._lock:
            if self._event.is_set():
                return
            self.reason = reason
            self._event.set()
            hooks, self._hooks = self._hooks, []
        for hook in hooks:
            hook(reason)

    def is_set(self) -> bool:
        return self._event.is_set()

    def add_hook(self, hook) -> None:
        """Call ``hook(reason)`` when (or if already) set."""
        with self._lock:
            if not self._event.is_set():
                self._hooks.append(hook)
                return
            reason = self.reason
        hook(reason)

    def remove_hook(self, hook) -> None:
        with self._lock:
            if hook in self._hooks:
                self._hooks.remove(hook)


@dataclass(frozen=True)
class AnalysisEvent:
    """One lifecycle event of one submission (see module docstring).

    ``payload`` is kind-specific: shard coordinates and the merged-so-far
    partial for ``shard_done``, counters for ``progress``, an error
    message for ``error``.  Everything in it must be JSON-serialisable —
    events are wire objects.
    """

    kind: str
    job: str
    seq: int
    created: float = 0.0
    payload: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}; "
                             f"valid: {list(EVENT_KINDS)}")

    @property
    def terminal(self) -> bool:
        """Whether this event closes its log."""
        return self.kind in TERMINAL_EVENTS

    # -------------------------------------------------------- serialisation
    def to_payload(self) -> dict:
        return {"schema": SCHEMA_VERSION, "kind": self.kind, "job": self.job,
                "seq": self.seq, "created": self.created,
                "payload": self.payload}

    @classmethod
    def from_payload(cls, payload: dict) -> "AnalysisEvent":
        schema = payload.get("schema")
        if schema != SCHEMA_VERSION:
            raise SchemaError(f"unsupported event schema {schema!r} "
                              f"(supported: {SCHEMA_VERSION})")
        return cls(kind=payload["kind"], job=payload["job"],
                   seq=payload["seq"], created=payload["created"],
                   payload=payload.get("payload", {}))

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AnalysisEvent":
        return cls.from_payload(json.loads(text))

    def slim(self) -> "AnalysisEvent":
        """This event without an embedded merged-so-far partial.

        ``shard_done`` payloads carry the request's cumulative
        :class:`~repro.api.request.PartialResult` — O(curves) bytes per
        shard, which a wide request multiplies into O(shards×curves) on
        the wire.  The slim form (``embed_partial=False`` consumers)
        replaces it with a ``partial_superseded_by`` pointer at this
        event's own seq — the same pointer compaction leaves behind —
        telling the consumer "fetch ``/v1/partial`` (or
        ``handle.partial()``) for the snapshot".  Other kinds pass
        through unchanged.
        """
        if self.kind != "shard_done" or "partial" not in self.payload:
            return self
        payload = {name: value for name, value in self.payload.items()
                   if name != "partial"}
        payload.setdefault("partial_superseded_by", self.seq)
        return dataclasses.replace(self, payload=payload)


class EventLog:
    """Append-only, condition-notified event history of one submission.

    Emitters (the service) call :meth:`emit`; consumers call
    :meth:`stream` — possibly long after the events landed, possibly from
    several threads at once, possibly resuming mid-history.  The log
    keeps every *event* (a submission emits ``2 + 2×shards`` of them),
    but **compacts superseded partial payloads**: when a new
    ``shard_done`` lands, earlier ``shard_done`` events drop their
    embedded merged-so-far partial in favour of a
    ``partial_superseded_by`` pointer at the newest one.  Live consumers
    received each cumulative partial as it happened; late replayers get
    every shard's coordinates plus the newest partial — which, by the
    monotonic-merge guarantee, contains everything the dropped ones did.
    This bounds a log's retained payload to O(shards) instead of
    O(shards²) (server-side, logs live as long as their job entry).
    """

    def __init__(self, job: str):
        self.job = job
        self._events: list[AnalysisEvent] = []
        self._condition = threading.Condition()

    def emit(self, kind: str, payload: dict | None = None) -> AnalysisEvent:
        """Append one event (thread-safe); returns it.

        Emitting after a terminal event is a silent no-op returning the
        terminal event: completion races (a shard finishing while the
        group is being failed) must not reopen a closed log.
        """
        with self._condition:
            if self._events and self._events[-1].terminal:
                return self._events[-1]
            event = AnalysisEvent(kind=kind, job=self.job,
                                  seq=len(self._events) + 1,
                                  created=time.time(),
                                  payload=payload or {})
            if kind == "shard_done" and "partial" in event.payload:
                self._compact_partials(event.seq)
            self._events.append(event)
            self._condition.notify_all()
            return event

    def _compact_partials(self, superseded_by: int) -> None:
        """Drop older shard_done events' partial payloads (caller holds
        the lock; see class docstring)."""
        for index, stale in enumerate(self._events):
            if stale.kind != "shard_done" or "partial" not in stale.payload:
                continue
            compacted = {name: value for name, value
                         in stale.payload.items() if name != "partial"}
            compacted["partial_superseded_by"] = superseded_by
            self._events[index] = dataclasses.replace(stale,
                                                      payload=compacted)

    def snapshot(self, after: int = 0, *,
                 embed_partial: bool = True) -> list[AnalysisEvent]:
        """Events with ``seq > after``, without blocking.

        ``embed_partial=False`` returns each ``shard_done`` in its slim
        form (:meth:`AnalysisEvent.slim`) — pointer instead of payload.
        """
        with self._condition:
            events = self._events[after:]
        if not embed_partial:
            events = [event.slim() for event in events]
        return events

    def closed(self) -> bool:
        with self._condition:
            return bool(self._events) and self._events[-1].terminal

    def stream(self, after: int = 0, timeout: float | None = None, *,
               embed_partial: bool = True):
        """Yield events with ``seq > after`` until the terminal event.

        ``timeout`` bounds the total silent wait: if no *new* event
        arrives within it the generator returns (the consumer may resume
        with ``after=<last seen seq>``).  With ``timeout=None`` the
        stream blocks until the log closes.  ``embed_partial=False``
        yields ``shard_done`` events in their slim form
        (:meth:`AnalysisEvent.slim`).
        """
        index = after
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            with self._condition:
                while len(self._events) <= index:
                    remaining = (None if deadline is None
                                 else deadline - time.monotonic())
                    if remaining is not None and remaining <= 0:
                        return
                    self._condition.wait(remaining)
                fresh = self._events[index:]
            for event in fresh:
                index = event.seq
                yield event if embed_partial else event.slim()
                if event.terminal:
                    return
            if deadline is not None:
                deadline = time.monotonic() + timeout

    @classmethod
    def resolved(cls, job: str, kind: str = "done",
                 payload: dict | None = None) -> "EventLog":
        """A pre-closed log (store hits, resurrected server jobs)."""
        log = cls(job)
        log.emit(kind, payload)
        return log
