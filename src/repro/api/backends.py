"""Pluggable execution backends for the analysis service.

The :class:`~repro.api.service.ResilienceService` accepts jobs and plans
shards; a backend decides *where the measurement runs*.  Every backend
exposes the same contract — :meth:`ExecutionBackend.submit` takes an
:class:`~repro.api.request.AnalysisRequest` plus the service's in-process
runner and returns a :class:`concurrent.futures.Future` resolving to an
:class:`~repro.api.request.AnalysisResult` — so the scheduler and the
handle layer are backend-agnostic.

Four implementations:

``inline``
    Runs the measurement synchronously on the submitting thread.  This is
    the equivalence reference and the default: ``service.submit(...)``
    behaves exactly like the pre-redesign blocking service.
``threads``
    A shared :class:`~concurrent.futures.ThreadPoolExecutor`.  Requests
    for *distinct* engines (independent models, eval subsets or options)
    sweep concurrently — the engines serialise themselves (per-engine
    locks in :class:`~repro.core.sweep.SweepEngine`), and the hook stack
    and autograd mode are thread-local, so worker threads cannot
    contaminate each other.  Results are bit-identical to ``inline``
    because every noise stream is derived statelessly per
    (seed, site, batch).
``subprocess``
    Each measurement runs in a fresh worker process
    (``python -m repro.api.backends <result-path>``) that receives the
    serialised :class:`AnalysisRequest` JSON on stdin and writes
    :class:`AnalysisResult` JSON — the versioned schema exercised as a
    real wire format.  Workers resolve benchmark/zoo refs themselves
    (session refs cannot cross a process boundary and error loudly) and
    run store-less; the parent owns persistence.
``procpool``
    Process isolation without the per-shard spin-up: a pool of
    *persistent* worker processes (``python -m repro.api.backends
    --pool-worker``) speaking the same request/result JSON, one framed
    document per line over stdin/stdout.  Each worker keeps a store-less
    in-process service alive between shards, so the ~1s interpreter
    start-up, the zoo weight load *and* the engine's prefix-activation
    cache are all paid once per worker instead of once per shard.  The
    worker immediately re-points its ``stdout`` at ``stderr`` so
    incidental prints (e.g. a zoo training run on a cold cache) can
    never corrupt the protocol channel.  Crashed workers fail their
    current shard loudly and are replaced on the next borrow.

Progress contract: every ``submit`` accepts an optional ``on_start``
callback invoked when the measurement *actually begins* (on the worker
thread, after any pool queuing) — this is what feeds honest ``started``
events upstream, rather than "was handed to a pool".

``make_backend`` is the one validation/construction choke point — the
CLI's ``--backend``/``--max-parallel`` flags and the service constructor
both go through it, so invalid combinations fail loudly and identically
everywhere.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable

from .request import AnalysisRequest, AnalysisResult

__all__ = ["BACKEND_NAMES", "BackendError", "ExecutionBackend",
           "InlineBackend", "ThreadBackend", "SubprocessBackend",
           "ProcPoolBackend", "make_backend"]

#: Valid values of the service/CLI ``backend`` knob.
BACKEND_NAMES: tuple[str, ...] = ("inline", "threads", "subprocess",
                                  "procpool")

#: Default shard concurrency for the parallel backends when the caller
#: does not pass ``max_parallel`` (bounded: sweeps are memory-hungry).
DEFAULT_MAX_PARALLEL = max(2, min(4, os.cpu_count() or 1))

Runner = Callable[[AnalysisRequest], AnalysisResult]


class BackendError(RuntimeError):
    """A backend could not execute a request (bad combo or worker failure)."""


class ExecutionBackend:
    """Protocol base: where one measurement executes.

    ``parallel`` is the backend's shard-concurrency capacity; the
    scheduler only splits a request into shards when it exceeds 1.
    """

    name: str = "abstract"
    parallel: int = 1

    def submit(self, request: AnalysisRequest, runner: Runner, *,
               on_start: Callable[[], None] | None = None) -> Future:
        """Execute ``runner(request)`` (or an equivalent out-of-process
        measurement of ``request``) and return a Future of the result.
        ``on_start`` fires when the measurement actually begins."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker pools; the backend is unusable afterwards."""


def _with_start(runner: Runner,
                on_start: Callable[[], None] | None) -> Runner:
    """Wrap ``runner`` so ``on_start`` fires on the executing thread."""
    if on_start is None:
        return runner

    def wrapped(request: AnalysisRequest) -> AnalysisResult:
        on_start()
        return runner(request)

    return wrapped


class InlineBackend(ExecutionBackend):
    """Current (pre-redesign) semantics: measure on the submitting thread.

    ``submit`` only returns once the measurement finished, so handles
    from an inline service are always already resolved — the blocking
    wrappers behave exactly like the old blocking ``submit``.
    """

    name = "inline"
    parallel = 1

    def submit(self, request: AnalysisRequest, runner: Runner, *,
               on_start: Callable[[], None] | None = None) -> Future:
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(_with_start(runner, on_start)(request))
        except BaseException as exc:  # noqa: BLE001 — delivered via the future
            future.set_exception(exc)
        return future


class ThreadBackend(ExecutionBackend):
    """Cross-request parallelism on a shared thread pool."""

    name = "threads"

    def __init__(self, max_parallel: int = 0):
        self.parallel = int(max_parallel) or DEFAULT_MAX_PARALLEL
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.parallel,
                    thread_name_prefix="repro-sweep")
            return self._pool

    def submit(self, request: AnalysisRequest, runner: Runner, *,
               on_start: Callable[[], None] | None = None) -> Future:
        return self._ensure_pool().submit(_with_start(runner, on_start),
                                          request)

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


def _reject_session_ref(backend_name: str, request: AnalysisRequest) -> None:
    if request.model.session is not None:
        raise BackendError(
            f"the {backend_name} backend cannot serve session ref "
            f"{request.model.key!r}: in-memory models do not cross a "
            f"process boundary (use benchmark=/preset= refs, or the "
            f"inline/threads backends)")


class SubprocessBackend(ExecutionBackend):
    """One worker process per measurement, speaking schema-v1 JSON.

    The dispatch threads only block on ``subprocess.run`` (no GIL
    contention), so ``parallel`` workers genuinely overlap.  Workers are
    hermetic: store-less, resolving the model from the shared zoo weight
    cache (``REPRO_ZOO_DIR`` propagates through the environment).
    """

    name = "subprocess"

    def __init__(self, max_parallel: int = 0):
        self.parallel = int(max_parallel) or DEFAULT_MAX_PARALLEL
        self._dispatch = ThreadBackend(self.parallel)

    def submit(self, request: AnalysisRequest, runner: Runner, *,
               on_start: Callable[[], None] | None = None) -> Future:
        _reject_session_ref(self.name, request)
        return self._dispatch.submit(request, _run_in_worker,
                                     on_start=on_start)

    def close(self) -> None:
        self._dispatch.close()


class _PoolWorker:
    """One persistent ``--pool-worker`` process of the procpool backend."""

    def __init__(self):
        handle, self.stderr_path = tempfile.mkstemp(
            prefix="repro-poolworker-", suffix=".log")
        self._stderr = os.fdopen(handle, "w")
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.api.backends", "--pool-worker"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=self._stderr, text=True, env=_worker_env())

    def alive(self) -> bool:
        return self.process.poll() is None

    def _stderr_tail(self) -> str:
        self._stderr.flush()
        try:
            with open(self.stderr_path) as stream:
                return stream.read().strip()[-2000:]
        except OSError:
            return ""

    def measure(self, request: AnalysisRequest) -> AnalysisResult:
        """One framed request/response round trip (raises on crash)."""
        try:
            self.process.stdin.write(request.to_json() + "\n")
            self.process.stdin.flush()
            line = self.process.stdout.readline()
        except (OSError, ValueError) as exc:
            raise BackendError(
                f"procpool worker pipe failed ({exc}); "
                f"worker log tail:\n{self._stderr_tail()}") from None
        if not line:
            code = self.process.poll()
            raise BackendError(
                f"procpool worker exited (status {code}) mid-request"
                + (f":\n{self._stderr_tail()}" if self._stderr_tail()
                   else ""))
        envelope = json.loads(line)
        if "error" in envelope:
            raise BackendError(
                f"procpool worker failed: {envelope['error']}")
        return AnalysisResult.from_payload(envelope["ok"])

    def close(self) -> None:
        try:
            if self.alive():
                self.process.stdin.close()   # EOF -> worker loop exits
                self.process.wait(timeout=5)
        except (OSError, ValueError, subprocess.TimeoutExpired):
            self.process.kill()
        finally:
            self._stderr.close()
            if os.path.exists(self.stderr_path):
                os.remove(self.stderr_path)


class ProcPoolBackend(ExecutionBackend):
    """Warm process pool: persistent workers speaking request/result JSON.

    Workers are spawned lazily (first borrow) and reused across shards,
    amortising the interpreter spin-up, zoo weight load and engine
    prefix-cache that :class:`SubprocessBackend` pays per shard.  A
    worker that crashes fails its current shard with
    :class:`BackendError` and is simply not returned to the idle pool —
    the next borrow spawns a replacement.
    """

    name = "procpool"

    def __init__(self, max_parallel: int = 0):
        self.parallel = int(max_parallel) or DEFAULT_MAX_PARALLEL
        self._dispatch = ThreadBackend(self.parallel)
        self._idle: list[_PoolWorker] = []
        self._lock = threading.Lock()
        self._closed = False

    def submit(self, request: AnalysisRequest, runner: Runner, *,
               on_start: Callable[[], None] | None = None) -> Future:
        _reject_session_ref(self.name, request)
        return self._dispatch.submit(request, self._run_on_worker,
                                     on_start=on_start)

    def _borrow(self) -> _PoolWorker:
        with self._lock:
            if self._closed:
                raise BackendError("procpool backend is closed")
            while self._idle:
                worker = self._idle.pop()
                if worker.alive():
                    return worker
                worker.close()
        return _PoolWorker()

    def _run_on_worker(self, request: AnalysisRequest) -> AnalysisResult:
        worker = self._borrow()
        try:
            result = worker.measure(request)
        except BaseException:
            worker.close()               # never reuse a suspect worker
            raise
        with self._lock:
            if not self._closed:
                self._idle.append(worker)
                return result
        worker.close()
        return result

    def close(self) -> None:
        self._dispatch.close()           # waits for in-flight borrows
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for worker in idle:
            worker.close()


def _worker_env() -> dict:
    """The worker's environment: inherit, but guarantee ``repro`` imports.

    The parent may run from a source checkout that is only importable via
    ``PYTHONPATH=src``; prepend the package root we were imported from so
    the child resolves the same code.
    """
    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    previous = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (package_root if not previous
                         else os.pathsep.join([package_root, previous]))
    return env


def _run_in_worker(request: AnalysisRequest) -> AnalysisResult:
    """Measure ``request`` in a fresh worker process (wire-format round trip).

    The result travels through a temp file rather than stdout so that
    incidental prints inside the worker (e.g. a zoo training run on a
    cold weight cache) cannot corrupt the payload.
    """
    handle, result_path = tempfile.mkstemp(prefix="repro-worker-",
                                           suffix=".json")
    os.close(handle)
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "repro.api.backends", result_path],
            input=request.to_json(), capture_output=True, text=True,
            env=_worker_env())
        if proc.returncode != 0:
            detail = (proc.stderr or proc.stdout or "").strip()
            raise BackendError(
                f"analysis worker exited with status {proc.returncode}"
                + (f":\n{detail[-2000:]}" if detail else ""))
        with open(result_path) as stream:
            return AnalysisResult.from_json(stream.read())
    finally:
        if os.path.exists(result_path):
            os.remove(result_path)


def _pool_worker_main() -> int:
    """``python -m repro.api.backends --pool-worker`` — persistent loop.

    Serves framed measurements until stdin closes: one request JSON per
    line in, one ``{"ok": <result payload>}`` or ``{"error": <message>}``
    envelope per line out.  The real stdout fd is captured for the
    protocol and ``sys.stdout``/fd 1 are re-pointed at stderr first, so
    incidental prints inside measurement code (zoo training on a cold
    cache, progress chatter) land in the log instead of the channel.

    One store-less service lives for the whole loop: shards of the same
    model reuse its engine cache — the warmth the backend exists for.
    """
    channel = os.fdopen(os.dup(sys.stdout.fileno()), "w")
    os.dup2(sys.stderr.fileno(), sys.stdout.fileno())
    sys.stdout = sys.stderr
    from .service import ResilienceService
    service = ResilienceService(use_store=False)
    for line in sys.stdin:
        if not line.strip():
            continue
        try:
            result = service.run(AnalysisRequest.from_json(line))
            envelope = {"ok": result.to_payload()}
        except Exception as exc:  # noqa: BLE001 — reported to the parent
            envelope = {"error": f"{type(exc).__name__}: {exc}"}
        channel.write(json.dumps(envelope, sort_keys=True) + "\n")
        channel.flush()
    return 0


def worker_main(argv: list[str] | None = None) -> int:
    """``python -m repro.api.backends <result-path>`` — the worker body.

    Reads one :class:`AnalysisRequest` JSON document on stdin, measures
    it with a store-less inline service, writes the
    :class:`AnalysisResult` JSON to ``<result-path>``.  With
    ``--pool-worker`` instead, serves the procpool's persistent framed
    loop (see :func:`_pool_worker_main`).
    """
    argv = sys.argv[1:] if argv is None else argv
    if argv == ["--pool-worker"]:
        return _pool_worker_main()
    if len(argv) != 1:
        print("usage: python -m repro.api.backends <result-path> "
              "(request JSON on stdin), or --pool-worker for the "
              "persistent procpool loop", file=sys.stderr)
        return 2
    from .service import ResilienceService
    request = AnalysisRequest.from_json(sys.stdin.read())
    service = ResilienceService(use_store=False)
    result = service.run(request)
    with open(argv[0], "w") as stream:
        stream.write(result.to_json())
    return 0


def make_backend(backend: str | ExecutionBackend | None,
                 max_parallel: int | None = None) -> ExecutionBackend:
    """Build (and validate) an execution backend.

    Loud-error contract (mirrors the CLI's inapplicable-flag rule):
    an unknown name, a non-positive ``max_parallel``, and
    ``max_parallel`` combined with the single-threaded ``inline``
    backend are all rejected here rather than silently ignored.
    """
    if max_parallel is not None and max_parallel < 1:
        raise ValueError(f"max_parallel must be >= 1, got {max_parallel}")
    if isinstance(backend, ExecutionBackend):
        if max_parallel is not None and max_parallel != backend.parallel:
            raise ValueError(
                f"max_parallel={max_parallel} conflicts with the prebuilt "
                f"{backend.name!r} backend (parallel={backend.parallel})")
        return backend
    name = backend or "inline"
    if name not in BACKEND_NAMES:
        raise ValueError(f"unknown backend {name!r}; "
                         f"valid: {list(BACKEND_NAMES)}")
    if name == "inline":
        if max_parallel is not None and max_parallel != 1:
            raise ValueError(
                "the inline backend executes on the submitting thread; "
                "max_parallel does not apply (use --backend threads or "
                "subprocess for parallel execution)")
        return InlineBackend()
    if name == "threads":
        return ThreadBackend(max_parallel or 0)
    if name == "procpool":
        return ProcPoolBackend(max_parallel or 0)
    return SubprocessBackend(max_parallel or 0)


if __name__ == "__main__":
    sys.exit(worker_main())
