"""Pluggable execution backends for the analysis service.

The :class:`~repro.api.service.ResilienceService` accepts jobs and plans
shards; a backend decides *where the measurement runs*.  Every backend
exposes the same contract — :meth:`ExecutionBackend.submit` takes an
:class:`~repro.api.request.AnalysisRequest` plus the service's in-process
runner and returns a :class:`concurrent.futures.Future` resolving to an
:class:`~repro.api.request.AnalysisResult` — so the scheduler and the
handle layer are backend-agnostic.

Three implementations:

``inline``
    Runs the measurement synchronously on the submitting thread.  This is
    the equivalence reference and the default: ``service.submit(...)``
    behaves exactly like the pre-redesign blocking service.
``threads``
    A shared :class:`~concurrent.futures.ThreadPoolExecutor`.  Requests
    for *distinct* engines (independent models, eval subsets or options)
    sweep concurrently — the engines serialise themselves (per-engine
    locks in :class:`~repro.core.sweep.SweepEngine`), and the hook stack
    and autograd mode are thread-local, so worker threads cannot
    contaminate each other.  Results are bit-identical to ``inline``
    because every noise stream is derived statelessly per
    (seed, site, batch).
``subprocess``
    Each measurement runs in a fresh worker process
    (``python -m repro.api.backends <result-path>``) that receives the
    serialised :class:`AnalysisRequest` JSON on stdin and writes
    :class:`AnalysisResult` JSON — the versioned schema exercised as a
    real wire format.  Workers resolve benchmark/zoo refs themselves
    (session refs cannot cross a process boundary and error loudly) and
    run store-less; the parent owns persistence.

``make_backend`` is the one validation/construction choke point — the
CLI's ``--backend``/``--max-parallel`` flags and the service constructor
both go through it, so invalid combinations fail loudly and identically
everywhere.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable

from .request import AnalysisRequest, AnalysisResult

__all__ = ["BACKEND_NAMES", "BackendError", "ExecutionBackend",
           "InlineBackend", "ThreadBackend", "SubprocessBackend",
           "make_backend"]

#: Valid values of the service/CLI ``backend`` knob.
BACKEND_NAMES: tuple[str, ...] = ("inline", "threads", "subprocess")

#: Default shard concurrency for the parallel backends when the caller
#: does not pass ``max_parallel`` (bounded: sweeps are memory-hungry).
DEFAULT_MAX_PARALLEL = max(2, min(4, os.cpu_count() or 1))

Runner = Callable[[AnalysisRequest], AnalysisResult]


class BackendError(RuntimeError):
    """A backend could not execute a request (bad combo or worker failure)."""


class ExecutionBackend:
    """Protocol base: where one measurement executes.

    ``parallel`` is the backend's shard-concurrency capacity; the
    scheduler only splits a request into shards when it exceeds 1.
    """

    name: str = "abstract"
    parallel: int = 1

    def submit(self, request: AnalysisRequest, runner: Runner) -> Future:
        """Execute ``runner(request)`` (or an equivalent out-of-process
        measurement of ``request``) and return a Future of the result."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker pools; the backend is unusable afterwards."""


class InlineBackend(ExecutionBackend):
    """Current (pre-redesign) semantics: measure on the submitting thread.

    ``submit`` only returns once the measurement finished, so handles
    from an inline service are always already resolved — the blocking
    wrappers behave exactly like the old blocking ``submit``.
    """

    name = "inline"
    parallel = 1

    def submit(self, request: AnalysisRequest, runner: Runner) -> Future:
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(runner(request))
        except BaseException as exc:  # noqa: BLE001 — delivered via the future
            future.set_exception(exc)
        return future


class ThreadBackend(ExecutionBackend):
    """Cross-request parallelism on a shared thread pool."""

    name = "threads"

    def __init__(self, max_parallel: int = 0):
        self.parallel = int(max_parallel) or DEFAULT_MAX_PARALLEL
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.parallel,
                    thread_name_prefix="repro-sweep")
            return self._pool

    def submit(self, request: AnalysisRequest, runner: Runner) -> Future:
        return self._ensure_pool().submit(runner, request)

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class SubprocessBackend(ExecutionBackend):
    """One worker process per measurement, speaking schema-v1 JSON.

    The dispatch threads only block on ``subprocess.run`` (no GIL
    contention), so ``parallel`` workers genuinely overlap.  Workers are
    hermetic: store-less, resolving the model from the shared zoo weight
    cache (``REPRO_ZOO_DIR`` propagates through the environment).
    """

    name = "subprocess"

    def __init__(self, max_parallel: int = 0):
        self.parallel = int(max_parallel) or DEFAULT_MAX_PARALLEL
        self._dispatch = ThreadBackend(self.parallel)

    def submit(self, request: AnalysisRequest, runner: Runner) -> Future:
        if request.model.session is not None:
            raise BackendError(
                f"the subprocess backend cannot serve session ref "
                f"{request.model.key!r}: in-memory models do not cross a "
                f"process boundary (use benchmark=/preset= refs, or the "
                f"inline/threads backends)")
        return self._dispatch.submit(request, _run_in_worker)

    def close(self) -> None:
        self._dispatch.close()


def _worker_env() -> dict:
    """The worker's environment: inherit, but guarantee ``repro`` imports.

    The parent may run from a source checkout that is only importable via
    ``PYTHONPATH=src``; prepend the package root we were imported from so
    the child resolves the same code.
    """
    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    previous = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (package_root if not previous
                         else os.pathsep.join([package_root, previous]))
    return env


def _run_in_worker(request: AnalysisRequest) -> AnalysisResult:
    """Measure ``request`` in a fresh worker process (wire-format round trip).

    The result travels through a temp file rather than stdout so that
    incidental prints inside the worker (e.g. a zoo training run on a
    cold weight cache) cannot corrupt the payload.
    """
    handle, result_path = tempfile.mkstemp(prefix="repro-worker-",
                                           suffix=".json")
    os.close(handle)
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "repro.api.backends", result_path],
            input=request.to_json(), capture_output=True, text=True,
            env=_worker_env())
        if proc.returncode != 0:
            detail = (proc.stderr or proc.stdout or "").strip()
            raise BackendError(
                f"analysis worker exited with status {proc.returncode}"
                + (f":\n{detail[-2000:]}" if detail else ""))
        with open(result_path) as stream:
            return AnalysisResult.from_json(stream.read())
    finally:
        if os.path.exists(result_path):
            os.remove(result_path)


def worker_main(argv: list[str] | None = None) -> int:
    """``python -m repro.api.backends <result-path>`` — the worker body.

    Reads one :class:`AnalysisRequest` JSON document on stdin, measures
    it with a store-less inline service, writes the
    :class:`AnalysisResult` JSON to ``<result-path>``.
    """
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.api.backends <result-path> "
              "(request JSON on stdin)", file=sys.stderr)
        return 2
    from .service import ResilienceService
    request = AnalysisRequest.from_json(sys.stdin.read())
    service = ResilienceService(use_store=False)
    result = service.run(request)
    with open(argv[0], "w") as stream:
        stream.write(result.to_json())
    return 0


def make_backend(backend: str | ExecutionBackend | None,
                 max_parallel: int | None = None) -> ExecutionBackend:
    """Build (and validate) an execution backend.

    Loud-error contract (mirrors the CLI's inapplicable-flag rule):
    an unknown name, a non-positive ``max_parallel``, and
    ``max_parallel`` combined with the single-threaded ``inline``
    backend are all rejected here rather than silently ignored.
    """
    if max_parallel is not None and max_parallel < 1:
        raise ValueError(f"max_parallel must be >= 1, got {max_parallel}")
    if isinstance(backend, ExecutionBackend):
        if max_parallel is not None and max_parallel != backend.parallel:
            raise ValueError(
                f"max_parallel={max_parallel} conflicts with the prebuilt "
                f"{backend.name!r} backend (parallel={backend.parallel})")
        return backend
    name = backend or "inline"
    if name not in BACKEND_NAMES:
        raise ValueError(f"unknown backend {name!r}; "
                         f"valid: {list(BACKEND_NAMES)}")
    if name == "inline":
        if max_parallel is not None and max_parallel != 1:
            raise ValueError(
                "the inline backend executes on the submitting thread; "
                "max_parallel does not apply (use --backend threads or "
                "subprocess for parallel execution)")
        return InlineBackend()
    if name == "threads":
        return ThreadBackend(max_parallel or 0)
    return SubprocessBackend(max_parallel or 0)


if __name__ == "__main__":
    sys.exit(worker_main())
