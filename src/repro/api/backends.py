"""Pluggable execution backends for the analysis service.

The :class:`~repro.api.service.ResilienceService` accepts jobs and plans
shards; a backend decides *where the measurement runs*.  Every backend
exposes the same contract — :meth:`ExecutionBackend.submit` takes an
:class:`~repro.api.request.AnalysisRequest` plus the service's in-process
runner and returns a :class:`concurrent.futures.Future` resolving to an
:class:`~repro.api.request.AnalysisResult` — so the scheduler and the
handle layer are backend-agnostic.

Four implementations:

``inline``
    Runs the measurement synchronously on the submitting thread.  This is
    the equivalence reference and the default: ``service.submit(...)``
    behaves exactly like the pre-redesign blocking service.
``threads``
    A shared :class:`~concurrent.futures.ThreadPoolExecutor`.  Requests
    for *distinct* engines (independent models, eval subsets or options)
    sweep concurrently — the engines serialise themselves (per-engine
    locks in :class:`~repro.core.sweep.SweepEngine`), and the hook stack
    and autograd mode are thread-local, so worker threads cannot
    contaminate each other.  Results are bit-identical to ``inline``
    because every noise stream is derived statelessly per
    (seed, site, batch).
``subprocess``
    Each measurement runs in a fresh worker process
    (``python -m repro.api.backends <result-path>``) that receives the
    serialised :class:`AnalysisRequest` JSON on stdin and writes
    :class:`AnalysisResult` JSON — the versioned schema exercised as a
    real wire format.  Workers resolve benchmark/zoo refs themselves
    (session refs cannot cross a process boundary and error loudly) and
    run store-less; the parent owns persistence.
``procpool``
    Process isolation without the per-shard spin-up: a pool of
    *persistent* worker processes (``python -m repro.api.backends
    --pool-worker``) speaking the same request/result JSON, one framed
    document per line over stdin/stdout.  Each worker keeps a store-less
    in-process service alive between shards, so the ~1s interpreter
    start-up, the zoo weight load *and* the engine's prefix-activation
    cache are all paid once per worker instead of once per shard.  The
    worker immediately re-points its ``stdout`` at ``stderr`` so
    incidental prints (e.g. a zoo training run on a cold cache) can
    never corrupt the protocol channel.  Crashed workers fail their
    current shard loudly and are replaced on the next borrow.

Progress contract: every ``submit`` accepts an optional ``on_start``
callback invoked when the measurement *actually begins* (on the worker
thread, after any pool queuing) — this is what feeds honest ``started``
events upstream, rather than "was handed to a pool".

Fault tolerance (see :mod:`repro.api.resilience`): worker loss raises
the retryable :class:`~repro.api.resilience.WorkerCrashed` (or
:class:`~repro.api.resilience.WorkerTimeout` when the supervision
watchdog killed a worker past its ``ExecutionOptions.shard_timeout``
deadline or with stale heartbeats), while deterministic refusals stay
bare :class:`~repro.api.resilience.BackendError`.  Procpool workers
heartbeat through every measurement so hung (not just dead) workers are
detected and replaced; cumulative replacements surface as
``worker_restarts``.  ``chaos:<inner>`` (built via ``make_backend``
with a :class:`~repro.api.resilience.FaultPlan`) wraps any backend in
the deterministic fault-injection harness — see :class:`ChaosBackend`.

``make_backend`` is the one validation/construction choke point — the
CLI's ``--backend``/``--max-parallel`` flags and the service constructor
both go through it, so invalid combinations fail loudly and identically
everywhere.
"""

from __future__ import annotations

import json
import logging
import os
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable

from .request import AnalysisRequest, AnalysisResult
from .resilience import (BackendError, FaultPlan, WorkerCrashed,
                         WorkerPreempted, WorkerSupervisor, WorkerTimeout)

__all__ = ["BACKEND_NAMES", "BackendError", "WorkerCrashed", "WorkerTimeout",
           "WorkerPreempted", "ExecutionBackend", "InlineBackend",
           "ThreadBackend", "SubprocessBackend", "ProcPoolBackend",
           "ChaosBackend", "make_backend"]

logger = logging.getLogger("repro.api.backends")

#: Valid values of the service/CLI ``backend`` knob (each may also be
#: wrapped as ``chaos:<name>`` together with a ``fault_plan``).
#: ``remote-pool`` (see :mod:`repro.api.cluster`) additionally needs a
#: ``workers=`` list of ``HOST:PORT`` agent addresses.
BACKEND_NAMES: tuple[str, ...] = ("inline", "threads", "subprocess",
                                  "procpool", "remote-pool")

#: Default shard concurrency for the parallel backends when the caller
#: does not pass ``max_parallel`` (bounded: sweeps are memory-hungry).
DEFAULT_MAX_PARALLEL = max(2, min(4, os.cpu_count() or 1))

#: Seconds between heartbeat frames a procpool worker emits while a
#: measurement is in flight (well under any sane supervision grace).
HEARTBEAT_INTERVAL = 0.5

Runner = Callable[[AnalysisRequest], AnalysisResult]


class ExecutionBackend:
    """Protocol base: where one measurement executes.

    ``parallel`` is the backend's shard-concurrency capacity; the
    scheduler only splits a request into shards when it exceeds 1.
    """

    name: str = "abstract"
    parallel: int = 1
    #: Whether this backend can terminate a running out-of-process
    #: measurement on a :class:`~repro.api.events.PreemptToken` set
    #: (the procpool's supervisor kill path).  In-process backends leave
    #: this False — their measurements observe the token cooperatively
    #: through the sweep engine's checkpoints instead.
    supports_preempt: bool = False

    def submit(self, request: AnalysisRequest, runner: Runner, *,
               on_start: Callable[[], None] | None = None) -> Future:
        """Execute ``runner(request)`` (or an equivalent out-of-process
        measurement of ``request``) and return a Future of the result.
        ``on_start`` fires when the measurement actually begins."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker pools; the backend is unusable afterwards."""


def _with_start(runner: Runner,
                on_start: Callable[[], None] | None) -> Runner:
    """Wrap ``runner`` so ``on_start`` fires on the executing thread."""
    if on_start is None:
        return runner

    def wrapped(request: AnalysisRequest) -> AnalysisResult:
        on_start()
        return runner(request)

    return wrapped


class InlineBackend(ExecutionBackend):
    """Current (pre-redesign) semantics: measure on the submitting thread.

    ``submit`` only returns once the measurement finished, so handles
    from an inline service are always already resolved — the blocking
    wrappers behave exactly like the old blocking ``submit``.
    """

    name = "inline"
    parallel = 1

    def submit(self, request: AnalysisRequest, runner: Runner, *,
               on_start: Callable[[], None] | None = None) -> Future:
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(_with_start(runner, on_start)(request))
        except BaseException as exc:  # noqa: BLE001 — delivered via the future
            future.set_exception(exc)
        return future


class ThreadBackend(ExecutionBackend):
    """Cross-request parallelism on a shared thread pool.

    **Lock ordering**: ``_lock`` is a leaf guarding only lazy pool
    creation and teardown; :meth:`close` swaps the pool reference out
    under it and shuts the pool down *after* releasing (a worker
    completion callback re-entering backend code must never find the
    lock held).
    """

    name = "threads"

    def __init__(self, max_parallel: int = 0):
        self.parallel = int(max_parallel) or DEFAULT_MAX_PARALLEL
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.parallel,
                    thread_name_prefix="repro-sweep")
            return self._pool

    def submit(self, request: AnalysisRequest, runner: Runner, *,
               on_start: Callable[[], None] | None = None) -> Future:
        return self._ensure_pool().submit(_with_start(runner, on_start),
                                          request)

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


def _reject_session_ref(backend_name: str, request: AnalysisRequest) -> None:
    if request.model.session is not None:
        raise BackendError(
            f"the {backend_name} backend cannot serve session ref "
            f"{request.model.key!r}: in-memory models do not cross a "
            f"process boundary (use benchmark=/preset= refs, or the "
            f"inline/threads backends)")


class SubprocessBackend(ExecutionBackend):
    """One worker process per measurement, speaking schema-v1 JSON.

    The dispatch threads only block on ``subprocess.run`` (no GIL
    contention), so ``parallel`` workers genuinely overlap.  Workers are
    hermetic: store-less, resolving the model from the shared zoo weight
    cache (``REPRO_ZOO_DIR`` propagates through the environment).
    """

    name = "subprocess"

    def __init__(self, max_parallel: int = 0):
        self.parallel = int(max_parallel) or DEFAULT_MAX_PARALLEL
        self._dispatch = ThreadBackend(self.parallel)

    def submit(self, request: AnalysisRequest, runner: Runner, *,
               on_start: Callable[[], None] | None = None) -> Future:
        _reject_session_ref(self.name, request)
        return self._dispatch.submit(request, _run_in_worker,
                                     on_start=on_start)

    def close(self) -> None:
        self._dispatch.close()


class _PoolWorker:
    """One persistent ``--pool-worker`` process of the procpool backend.

    The worker heartbeats while a measurement is in flight (``{"hb": t}``
    frames interleaved with the result envelope); :meth:`measure` skips
    them, refreshing :attr:`last_beat` — the supervision watchdog's
    staleness signal.  :meth:`kill` is the watchdog's teardown: it notes
    *why* before SIGKILLing, so the read loop (which then observes EOF)
    can raise :class:`~repro.api.resilience.WorkerTimeout` instead of a
    plain crash.
    """

    def __init__(self):
        handle, self.stderr_path = tempfile.mkstemp(
            prefix="repro-poolworker-", suffix=".log")
        self._stderr = os.fdopen(handle, "w")
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.api.backends", "--pool-worker"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=self._stderr, text=True, env=_worker_env())
        self.last_beat = time.monotonic()
        self.killed_reason: str | None = None
        self.killed_preempted = False

    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self, reason: str, *, preempted: bool = False) -> None:
        """Watchdog/scheduler teardown: record the verdict, then SIGKILL.

        ``preempted`` marks a fair-scheduler kill (a healthy worker shot
        to free its slot) so the read loop classifies the loss as
        :class:`~repro.api.resilience.WorkerPreempted` rather than a
        timeout.
        """
        self.killed_reason = reason
        self.killed_preempted = preempted
        try:
            self.process.kill()
        except OSError:
            pass

    def _stderr_tail(self) -> str:
        self._stderr.flush()
        try:
            with open(self.stderr_path) as stream:
                return stream.read().strip()[-2000:]
        except OSError:
            return ""

    def _lost(self, detail: str) -> BackendError:
        """The channel broke: classify watchdog kill vs spontaneous death."""
        if self.killed_reason is not None:
            if self.killed_preempted:
                return WorkerPreempted(self.killed_reason)
            return WorkerTimeout(self.killed_reason)
        return WorkerCrashed(detail)

    def measure(self, request: AnalysisRequest,
                chaos: dict | None = None) -> AnalysisResult:
        """One framed request/response round trip (raises on crash).

        ``chaos`` is an optional scripted-fault rider (a
        :class:`~repro.api.resilience.Fault` payload) executed *inside*
        the worker — the chaos harness's real-injection path.
        """
        self.last_beat = time.monotonic()
        if chaos is None:
            frame = request.to_json()
        else:
            frame = json.dumps({"request": request.to_payload(),
                                "chaos": chaos}, sort_keys=True)
        try:
            self.process.stdin.write(frame + "\n")
            self.process.stdin.flush()
            while True:
                line = self.process.stdout.readline()
                if not line:
                    code = self.process.poll()
                    raise self._lost(
                        f"procpool worker exited (status {code}) mid-request"
                        + (f":\n{self._stderr_tail()}" if self._stderr_tail()
                           else ""))
                try:
                    envelope = json.loads(line)
                except ValueError:
                    raise WorkerCrashed(
                        f"procpool worker emitted a corrupted frame "
                        f"({line.strip()[:120]!r}); worker log tail:\n"
                        f"{self._stderr_tail()}") from None
                if "hb" in envelope:
                    self.last_beat = time.monotonic()
                    continue
                if "error" in envelope:
                    raise BackendError(
                        f"procpool worker failed: {envelope['error']}")
                return AnalysisResult.from_payload(envelope["ok"])
        except (OSError, ValueError) as exc:
            raise self._lost(
                f"procpool worker pipe failed ({exc}); "
                f"worker log tail:\n{self._stderr_tail()}") from None

    def close(self) -> None:
        try:
            if self.alive():
                self.process.stdin.close()   # EOF -> worker loop exits
                self.process.wait(timeout=5)
        except (OSError, ValueError, subprocess.TimeoutExpired):
            self.process.kill()
        finally:
            self._stderr.close()
            if os.path.exists(self.stderr_path):
                os.remove(self.stderr_path)


class ProcPoolBackend(ExecutionBackend):
    """Warm process pool: persistent workers speaking request/result JSON.

    Workers are spawned lazily (first borrow) and reused across shards,
    amortising the interpreter spin-up, zoo weight load and engine
    prefix-cache that :class:`SubprocessBackend` pays per shard.  A
    worker that crashes fails its current shard with the retryable
    :class:`~repro.api.resilience.WorkerCrashed` and is simply not
    returned to the idle pool — the next borrow spawns a replacement
    (counted in :attr:`worker_restarts`, surfaced via
    ``queue_snapshot()`` and ``/v1/health``).

    Supervision: every in-flight measurement is watched by a
    :class:`~repro.api.resilience.WorkerSupervisor` — a wall-clock
    deadline when the request carries ``options.shard_timeout``, and
    heartbeat staleness (``heartbeat_grace`` seconds without a worker
    heartbeat frame) always.  A tripped watchdog SIGKILLs the worker,
    whose read loop then raises
    :class:`~repro.api.resilience.WorkerTimeout` — retryable, so the
    shard requeues on a fresh worker.

    Elasticity: the pool grows on demand toward ``max_parallel`` (a
    borrow with no idle worker spawns one) and shrinks when quiet —
    workers idle longer than ``idle_ttl`` seconds are reaped on the next
    borrow/return (or an explicit :meth:`reap_idle`), releasing their
    memory-hungry model weights.  :meth:`pool_snapshot` surfaces the
    live size/busy/idle counts plus cumulative spawn/reap counters into
    ``queue_snapshot()`` and ``/v1/health``.

    Preemption: ``supports_preempt`` is True — ``submit`` accepts a
    :class:`~repro.api.events.PreemptToken` and registers a kill hook so
    a fair-scheduler preempt SIGKILLs the borrowed worker immediately;
    the read loop then raises
    :class:`~repro.api.resilience.WorkerPreempted` (a
    :class:`~repro.api.resilience.WorkerTimeout` subclass the service
    intercepts *before* the retry layer — preemption is not a fault and
    burns no retry budget).

    **Lock ordering** (checked by ``repro lint`` and the runtime lock
    witness): ``_lock`` is a leaf guarding the idle list and the
    spawn/reap/busy counters.  Borrow/return take it in short bursts
    and **drop it before any blocking call** — spawning a worker,
    writing a frame, killing a process, or joining the supervisor
    (:class:`~repro.api.resilience.WorkerSupervisor` has its own leaf
    lock; the two are never held together).  ``reap_idle`` collects
    victims under ``_lock`` and closes them after releasing it.  Never
    call into a worker or another component while holding ``_lock``.
    """

    name = "procpool"
    supports_preempt = True
    #: Scripted chaos faults ride the wire and execute inside the worker
    #: (the :class:`ChaosBackend` real-injection path); the TCP
    #: remote-pool backend advertises the same flag.
    chaos_rider = True

    def __init__(self, max_parallel: int = 0, *,
                 heartbeat_grace: float | None = 10.0,
                 poll_interval: float = 0.1,
                 idle_ttl: float | None = 300.0):
        if idle_ttl is not None and idle_ttl <= 0:
            raise ValueError(f"idle_ttl must be positive or None, "
                             f"got {idle_ttl}")
        self.parallel = int(max_parallel) or DEFAULT_MAX_PARALLEL
        self.heartbeat_grace = heartbeat_grace
        self.idle_ttl = idle_ttl
        self._dispatch = ThreadBackend(self.parallel)
        self._supervisor = WorkerSupervisor(poll_interval=poll_interval)
        #: (worker, idled_at) pairs, oldest first at index 0.
        self._idle: list[tuple[_PoolWorker, float]] = []
        self._lock = threading.Lock()
        self._closed = False
        self._restarts = 0
        self._spawned = 0
        self._reaped = 0
        self._busy = 0

    @property
    def worker_restarts(self) -> int:
        """Cumulative crashed/killed-worker replacements."""
        with self._lock:
            return self._restarts

    def pool_snapshot(self) -> dict:
        """Live pool shape for health/queue surfaces."""
        with self._lock:
            idle = len(self._idle)
            busy = self._busy
            return {"size": idle + busy, "busy": busy, "idle": idle,
                    "max": self.parallel, "spawned": self._spawned,
                    "reaped": self._reaped, "idle_ttl": self.idle_ttl}

    def submit(self, request: AnalysisRequest, runner: Runner, *,
               on_start: Callable[[], None] | None = None,
               chaos: dict | None = None, preempt=None) -> Future:
        _reject_session_ref(self.name, request)

        def run(req: AnalysisRequest, _chaos=chaos,
                _preempt=preempt) -> AnalysisResult:
            return self._run_on_worker(req, chaos=_chaos, preempt=_preempt)

        return self._dispatch.submit(request, run, on_start=on_start)

    def reap_idle(self, now: float | None = None) -> int:
        """Close idle workers past :attr:`idle_ttl`; returns the count."""
        if self.idle_ttl is None:
            return 0
        now = time.monotonic() if now is None else now
        expired: list[_PoolWorker] = []
        with self._lock:
            while self._idle and now - self._idle[0][1] >= self.idle_ttl:
                expired.append(self._idle.pop(0)[0])
            self._reaped += len(expired)
        for worker in expired:
            worker.close()
        if expired:
            logger.info("procpool reaped %d idle worker(s) past the %.0fs "
                        "TTL", len(expired), self.idle_ttl)
        return len(expired)

    def _borrow(self) -> _PoolWorker:
        self.reap_idle()
        with self._lock:
            if self._closed:
                raise BackendError("procpool backend is closed")
            self._busy += 1
            while self._idle:
                worker, _ = self._idle.pop()      # newest first: warmest
                if worker.alive():
                    return worker
                worker.close()
            self._spawned += 1
        try:
            return _PoolWorker()
        except BaseException:
            with self._lock:
                self._busy -= 1
            raise

    def _run_on_worker(self, request: AnalysisRequest,
                       chaos: dict | None = None,
                       preempt=None) -> AnalysisResult:
        if preempt is not None and preempt.is_set():
            raise WorkerPreempted(preempt.reason or
                                  "shard preempted before dispatch")
        worker = self._borrow()
        describe = f"shard {request.fingerprint()[:12]}"
        timeout = request.options.shard_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        token = self._supervisor.watch(
            kill=worker.kill, describe=describe, deadline=deadline,
            beat=lambda: worker.last_beat, grace=self.heartbeat_grace)
        hook = None
        if preempt is not None:
            def hook(reason, _worker=worker):
                _worker.kill(reason or "shard preempted", preempted=True)
            preempt.add_hook(hook)
        try:
            result = worker.measure(request, chaos=chaos)
        except BaseException as error:
            worker.close()               # never reuse a suspect worker
            with self._lock:
                self._busy -= 1
            if isinstance(error, WorkerCrashed) \
                    and not isinstance(error, WorkerPreempted):
                with self._lock:
                    self._restarts += 1
                    restarts = self._restarts
                logger.warning(
                    "procpool worker lost on %s (%s: %s); replacement "
                    "spawns on next borrow (worker_restarts=%d)",
                    describe, type(error).__name__, error, restarts)
            raise
        finally:
            if hook is not None:
                preempt.remove_hook(hook)
            self._supervisor.unwatch(token)
        with self._lock:
            self._busy -= 1
            if not self._closed:
                self._idle.append((worker, time.monotonic()))
                worker = None
        if worker is not None:
            worker.close()
        return result

    def close(self) -> None:
        self._dispatch.close()           # waits for in-flight borrows
        self._supervisor.close()
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for worker, _ in idle:
            worker.close()


def _worker_env() -> dict:
    """The worker's environment: inherit, but guarantee ``repro`` imports.

    The parent may run from a source checkout that is only importable via
    ``PYTHONPATH=src``; prepend the package root we were imported from so
    the child resolves the same code.
    """
    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    previous = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (package_root if not previous
                         else os.pathsep.join([package_root, previous]))
    return env


def _run_in_worker(request: AnalysisRequest) -> AnalysisResult:
    """Measure ``request`` in a fresh worker process (wire-format round trip).

    The result travels through a temp file rather than stdout so that
    incidental prints inside the worker (e.g. a zoo training run on a
    cold weight cache) cannot corrupt the payload.
    """
    handle, result_path = tempfile.mkstemp(prefix="repro-worker-",
                                           suffix=".json")
    os.close(handle)
    timeout = request.options.shard_timeout
    try:
        try:
            proc = subprocess.run(
                [sys.executable, "-m", "repro.api.backends", result_path],
                input=request.to_json(), capture_output=True, text=True,
                env=_worker_env(), timeout=timeout)
        except subprocess.TimeoutExpired:
            raise WorkerTimeout(
                f"analysis worker exceeded the {timeout}s shard deadline "
                f"and was killed") from None
        if proc.returncode != 0:
            detail = (proc.stderr or proc.stdout or "").strip()
            # A negative status means the process died on a signal
            # (OOM-kill, segfault) — infrastructure, hence retryable; a
            # positive one is the worker reporting a deterministic
            # measurement error.
            error_cls = WorkerCrashed if proc.returncode < 0 else BackendError
            raise error_cls(
                f"analysis worker exited with status {proc.returncode}"
                + (f":\n{detail[-2000:]}" if detail else ""))
        with open(result_path) as stream:
            return AnalysisResult.from_json(stream.read())
    finally:
        if os.path.exists(result_path):
            os.remove(result_path)


def _heartbeat_loop(emit: Callable[[dict], None],
                    stop: threading.Event) -> None:
    """Worker-side heartbeat thread body: one ``{"hb": t}`` frame per
    :data:`HEARTBEAT_INTERVAL` while a measurement is in flight."""
    while not stop.wait(HEARTBEAT_INTERVAL):
        try:
            emit({"hb": time.time()})
        except (OSError, ValueError):
            return                       # parent hung up; we exit soon


def _pool_worker_main() -> int:
    """``python -m repro.api.backends --pool-worker`` — persistent loop.

    Serves framed measurements until stdin closes: one request JSON per
    line in, one ``{"ok": <result payload>}`` or ``{"error": <message>}``
    envelope per line out — plus ``{"hb": t}`` heartbeat frames while a
    measurement runs, so the parent's watchdog can tell *hung* from
    *slow*.  A frame may also be an envelope ``{"request": ..,
    "chaos": ..}`` carrying a scripted fault to execute in-process (the
    chaos harness's real-injection path): crash before/after the
    measurement (``os._exit``), emit a corrupted result frame, or hang
    without heartbeats until the watchdog kills us.  The real stdout fd
    is captured for the protocol and ``sys.stdout``/fd 1 are re-pointed
    at stderr first, so incidental prints inside measurement code (zoo
    training on a cold cache, progress chatter) land in the log instead
    of the channel.

    One store-less service lives for the whole loop: shards of the same
    model reuse its engine cache — the warmth the backend exists for.
    """
    channel = os.fdopen(os.dup(sys.stdout.fileno()), "w")
    os.dup2(sys.stderr.fileno(), sys.stdout.fileno())
    sys.stdout = sys.stderr
    from .service import ResilienceService
    service = ResilienceService(use_store=False)
    write_lock = threading.Lock()

    def emit(document) -> None:
        text = (document if isinstance(document, str)
                else json.dumps(document, sort_keys=True))
        with write_lock:
            # lint: allow(lock-blocking-call): serializing this write IS the lock's job — the heartbeat thread shares the channel
            channel.write(text + "\n")
            # lint: allow(lock-blocking-call): the flush completes the frame the lock serializes
            channel.flush()

    for line in sys.stdin:
        if not line.strip():
            continue
        document = json.loads(line)
        chaos = document.get("chaos") if "request" in document else None
        payload = document.get("request", document)
        kind = chaos["kind"] if chaos is not None else None
        if kind == "crash-before":
            os._exit(17)
        if kind == "hang":
            # No heartbeats, no progress: indistinguishable from a
            # genuinely wedged worker.  The parent watchdog kills us.
            time.sleep(3600)
        stop_beat = threading.Event()
        beat_thread = threading.Thread(target=_heartbeat_loop,
                                       args=(emit, stop_beat), daemon=True)
        beat_thread.start()
        try:
            result = service.run(AnalysisRequest.from_payload(payload))
            envelope = {"ok": result.to_payload()}
        except Exception as exc:  # noqa: BLE001 — reported to the parent
            envelope = {"error": f"{type(exc).__name__}: {exc}"}
        finally:
            # Joined before the envelope is emitted, so no stale
            # heartbeat frame ever follows a result on the channel.
            stop_beat.set()
            beat_thread.join(timeout=5)
        if kind == "crash-after":
            os._exit(17)
        if kind == "corrupt":
            emit("{corrupt frame" + "x" * 16)
            continue
        emit(envelope)
    return 0


def worker_main(argv: list[str] | None = None) -> int:
    """``python -m repro.api.backends <result-path>`` — the worker body.

    Reads one :class:`AnalysisRequest` JSON document on stdin, measures
    it with a store-less inline service, writes the
    :class:`AnalysisResult` JSON to ``<result-path>``.  With
    ``--pool-worker`` instead, serves the procpool's persistent framed
    loop (see :func:`_pool_worker_main`).
    """
    argv = sys.argv[1:] if argv is None else argv
    if argv == ["--pool-worker"]:
        return _pool_worker_main()
    if len(argv) != 1:
        print("usage: python -m repro.api.backends <result-path> "
              "(request JSON on stdin), or --pool-worker for the "
              "persistent procpool loop", file=sys.stderr)
        return 2
    from .service import ResilienceService
    request = AnalysisRequest.from_json(sys.stdin.read())
    service = ResilienceService(use_store=False)
    result = service.run(request)
    with open(argv[0], "w") as stream:
        stream.write(result.to_json())
    return 0


class ChaosBackend(ExecutionBackend):
    """Deterministic fault-injection wrapper around a real backend.

    Built via ``make_backend("chaos:<inner>", fault_plan=...)``.  Every
    submission is keyed by its request fingerprint: the first time a
    fingerprint is seen it gets the next shard index (first-seen order),
    and each resubmission of the same fingerprint bumps its attempt
    counter — so a :class:`~repro.api.resilience.FaultPlan` matches on
    *(shard, attempt)* coordinates that are stable under any dispatch
    interleaving, making chaos runs reproducible.

    Injection has two paths:

    * **procpool inner** — the fault rides the wire to the worker and
      executes there (real ``os._exit`` crashes, a genuinely corrupted
      protocol frame, a genuinely hung process for the watchdog);
    * **other inners** — the fault is simulated at the dispatch
      boundary (a :class:`~repro.api.resilience.WorkerCrashed` future;
      ``crash-after`` runs the real measurement first, then loses the
      result), exercising the same retry machinery without process
      machinery.  ``hang`` faults *require* the procpool inner — there
      is no process to kill anywhere else, so they are rejected at
      construction.

    ``injected`` counts faults actually fired (a chaos test asserting
    recovery should also assert its faults happened).
    """

    def __init__(self, inner: ExecutionBackend, fault_plan: FaultPlan):
        if not isinstance(fault_plan, FaultPlan):
            raise TypeError(f"fault_plan must be a FaultPlan, "
                            f"got {type(fault_plan).__name__}")
        if any(fault.kind == "hang" for fault in fault_plan.faults) \
                and not getattr(inner, "chaos_rider", False):
            raise ValueError(
                f"hang faults hold a worker hostage and need a "
                f"worker-owning backend's watchdog to recover "
                f"(procpool or remote-pool); the {inner.name!r} backend "
                f"cannot inject them")
        self.inner = inner
        self.plan = fault_plan
        self.name = f"chaos:{inner.name}"
        self.parallel = inner.parallel
        self.injected = 0
        self._order: dict[str, int] = {}
        self._attempts: dict[str, int] = {}
        self._lock = threading.Lock()

    @property
    def worker_restarts(self) -> int:
        return int(getattr(self.inner, "worker_restarts", 0) or 0)

    @property
    def supports_preempt(self) -> bool:
        return bool(getattr(self.inner, "supports_preempt", False))

    def pool_snapshot(self) -> dict:
        snapshot = getattr(self.inner, "pool_snapshot", None)
        return snapshot() if callable(snapshot) else {}

    def submit(self, request: AnalysisRequest, runner: Runner, *,
               on_start: Callable[[], None] | None = None,
               preempt=None) -> Future:
        fingerprint = request.fingerprint()
        kwargs = {"on_start": on_start}
        if preempt is not None and self.supports_preempt:
            kwargs["preempt"] = preempt
        with self._lock:
            shard = self._order.setdefault(fingerprint, len(self._order))
            attempt = self._attempts.get(fingerprint, 0)
            self._attempts[fingerprint] = attempt + 1
            fault = self.plan.fault_for(shard, attempt)
            if fault is not None:
                self.injected += 1
        if fault is None:
            return self.inner.submit(request, runner, **kwargs)
        logger.info("chaos: injecting %s on shard %d attempt %d",
                    fault.kind, shard, attempt)
        if getattr(self.inner, "chaos_rider", False):
            return self.inner.submit(request, runner,
                                     chaos=fault.to_payload(), **kwargs)
        return self._simulate(fault, request, runner, on_start,
                              shard, attempt)

    def _simulate(self, fault, request: AnalysisRequest, runner: Runner,
                  on_start, shard: int, attempt: int) -> Future:
        """Dispatch-boundary fault simulation for in-process inners."""
        if fault.kind in ("crash-before", "corrupt"):
            noun = ("corrupted result frame" if fault.kind == "corrupt"
                    else "worker crash before measurement")
            failed: Future = Future()
            failed.set_exception(WorkerCrashed(
                f"chaos: injected {noun} on shard {shard} "
                f"attempt {attempt}"))
            return failed
        # crash-after: the measurement really runs, then its result is
        # lost — the replay must still be byte-identical.
        inner = self.inner.submit(request, runner, on_start=on_start)
        outer: Future = Future()

        def lose_result(done: Future) -> None:
            error = done.exception()
            outer.set_exception(error if error is not None else WorkerCrashed(
                f"chaos: injected worker crash after measurement on "
                f"shard {shard} attempt {attempt} (result frame lost)"))

        inner.add_done_callback(lose_result)
        return outer

    def close(self) -> None:
        self.inner.close()


def make_backend(backend: str | ExecutionBackend | None,
                 max_parallel: int | None = None,
                 fault_plan: FaultPlan | None = None,
                 workers=None) -> ExecutionBackend:
    """Build (and validate) an execution backend.

    Loud-error contract (mirrors the CLI's inapplicable-flag rule):
    an unknown name, a non-positive ``max_parallel``, and
    ``max_parallel`` combined with the single-threaded ``inline``
    backend are all rejected here rather than silently ignored.  The
    ``chaos:<inner>`` prefix wraps the named inner backend in
    :class:`ChaosBackend` and **requires** ``fault_plan``; conversely a
    ``fault_plan`` without the chaos prefix (or a prebuilt backend) is
    rejected rather than silently dropped.  ``workers`` (a list of
    ``HOST:PORT`` agent addresses) belongs to the ``remote-pool``
    backend exclusively — required there, rejected everywhere else.
    """
    if max_parallel is not None and max_parallel < 1:
        raise ValueError(f"max_parallel must be >= 1, got {max_parallel}")
    if isinstance(backend, ExecutionBackend):
        if max_parallel is not None and max_parallel != backend.parallel:
            raise ValueError(
                f"max_parallel={max_parallel} conflicts with the prebuilt "
                f"{backend.name!r} backend (parallel={backend.parallel})")
        if workers is not None:
            raise ValueError(
                f"workers= does not apply to the prebuilt "
                f"{backend.name!r} backend (pass the worker set to its "
                f"own constructor)")
        if fault_plan is not None:
            return ChaosBackend(backend, fault_plan)
        return backend
    name = backend or "inline"
    chaos = name.startswith("chaos:")
    if chaos:
        name = name[len("chaos:"):]
        if fault_plan is None:
            raise ValueError(
                f"the chaos:{name} backend wrapper needs a fault_plan= "
                f"(a repro.api.resilience.FaultPlan): chaos without a "
                f"script injects nothing")
    elif fault_plan is not None:
        raise ValueError(
            f"fault_plan only applies to the chaos wrapper; use "
            f"backend='chaos:{name}' to inject faults into the "
            f"{name!r} backend")
    if name not in BACKEND_NAMES:
        raise ValueError(f"unknown backend {name!r}; "
                         f"valid: {list(BACKEND_NAMES)}")
    if workers is not None and name != "remote-pool":
        raise ValueError(
            f"workers= only applies to the remote-pool backend; the "
            f"{name!r} backend owns its own workers (use "
            f"backend='remote-pool' to dispatch to TCP agents)")
    if name == "remote-pool":
        from .cluster import RemotePoolBackend
        inner: ExecutionBackend = RemotePoolBackend(workers or (),
                                                    max_parallel or 0)
        if chaos:
            return ChaosBackend(inner, fault_plan)
        return inner
    if name == "inline":
        if max_parallel is not None and max_parallel != 1:
            raise ValueError(
                "the inline backend executes on the submitting thread; "
                "max_parallel does not apply (use --backend threads or "
                "subprocess for parallel execution)")
        inner: ExecutionBackend = InlineBackend()
    elif name == "threads":
        inner = ThreadBackend(max_parallel or 0)
    elif name == "procpool":
        inner = ProcPoolBackend(max_parallel or 0)
    else:
        inner = SubprocessBackend(max_parallel or 0)
    if chaos:
        return ChaosBackend(inner, fault_plan)
    return inner


if __name__ == "__main__":
    sys.exit(worker_main())
