"""Fleet tier: TCP worker agents, a remote shard pool, and a multi-node
coordinator.

Three layers, each riding a seam the stack already has (ISSUE 10):

**Worker agents** (``repro worker --listen HOST:PORT``).
    :class:`WorkerAgent` lifts the procpool's framed stdin/stdout worker
    protocol (:func:`repro.api.backends._pool_worker_main`) onto TCP
    verbatim: one JSON document per line — request in, ``{"ok": ...}`` /
    ``{"error": ...}`` envelope out, ``{"hb": t}`` heartbeat frames while
    a measurement is in flight, and the same scripted-chaos rider
    (``{"request": ..., "chaos": ...}``) so the fault-injection harness
    drives remote workers exactly like local ones.  Each connection
    additionally opens with a ``{"hello": {"schema": ..., "pid": ...}}``
    greeting so clients fail fast on schema skew or a non-worker peer.
    One store-less :class:`~repro.api.service.ResilienceService` lives
    for the agent's whole life, so shards of the same model reuse its
    warm engine cache across connections.

**The remote pool** (``make_backend("remote-pool", workers=[...])``).
    :class:`RemotePoolBackend` is the procpool backend with the process
    table swapped for a set of ``HOST:PORT`` agents: channels are pooled
    and reused, a borrow with no idle channel dials the next agent
    round-robin, and every in-flight shard is watched by the PR 6
    :class:`~repro.api.resilience.WorkerSupervisor` (wall-clock deadline
    + heartbeat staleness).  A dead or hung peer is never a hang: the
    socket breaks (or the watchdog breaks it), the shard fails with the
    retryable :class:`~repro.api.resilience.WorkerCrashed` /
    :class:`~repro.api.resilience.WorkerTimeout`, the agent's address
    sits out a cooldown, and the retry reconnects elsewhere.

**The coordinator** (``repro coordinate --node URL ...``).
    :class:`ClusterCoordinator` + :class:`CoordinatorServer` federate
    several ``repro serve`` nodes behind the node API itself — a
    :class:`~repro.api.server.RemoteService` cannot tell a coordinator
    from a node.  Submissions route by consistent-hashing the request
    fingerprint over the node ring (drain-aware: 503ing or unreachable
    nodes are walked past); job ids are content-addressed store keys, so
    any node can answer any job id (by store lookup) and losing a node
    mid-job is survivable — the coordinator resubmits the recorded
    request to the next ring node, which recomputes the missing shards
    (or serves them straight from a shared store layout) under the *same*
    job id, and the proxied event stream carries a ``node_lost`` event at
    the splice point.

Byte-identity is the contract throughout: a curve measured through a
remote pool, through a coordinator, after a chaos kill, or served from a
peer node's shared-layout warm hit is the same curve, byte for byte.
"""

from __future__ import annotations

import bisect
import hashlib
import http.client
import json
import logging
import os
import socket
import socketserver
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from .backends import (DEFAULT_MAX_PARALLEL, ExecutionBackend, Runner,
                       ThreadBackend, _heartbeat_loop, _reject_session_ref)
from .events import TERMINAL_EVENTS, AnalysisEvent
from .request import SCHEMA_VERSION, AnalysisRequest, AnalysisResult
from .resilience import (BackendError, WorkerCrashed, WorkerPreempted,
                         WorkerSupervisor, WorkerTimeout)
from .server import WAIT_SLICE_SECONDS, RemoteError

__all__ = ["WorkerAgent", "RemotePoolBackend", "ClusterCoordinator",
           "CoordinatorServer", "NodeUnreachable", "parse_worker_address"]

logger = logging.getLogger("repro.api.cluster")


def parse_worker_address(spec) -> tuple[str, int]:
    """``"HOST:PORT"`` (or a ``(host, port)`` pair) → ``(host, port)``."""
    if isinstance(spec, tuple):
        host, port = spec
        return str(host), int(port)
    host, sep, port = str(spec).rpartition(":")
    if not sep or not host or not port:
        raise ValueError(f"worker address {spec!r} is not HOST:PORT")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"worker address {spec!r} is not HOST:PORT "
                         f"(port {port!r} is not an integer)") from None


# ------------------------------------------------------------- worker agent
class _AgentServer(socketserver.ThreadingTCPServer):
    """One thread per worker connection; never joined on close.

    ``block_on_close = False`` because a scripted ``hang`` chaos fault
    leaves its (daemon) handler thread asleep for an hour — exactly the
    wedged-worker condition the client watchdog exists for — and
    ``server_close`` must not wait for it.
    """

    daemon_threads = True
    allow_reuse_address = True
    block_on_close = False


class WorkerAgent:
    """A TCP measurement worker (``repro worker --listen HOST:PORT``).

    Serves the framed procpool worker protocol to any number of
    concurrent connections (see module docstring).  ``port=0`` binds a
    free port — read :attr:`address` after construction.

    ``hard_exit`` selects how a scripted chaos crash dies: the real CLI
    agent uses ``os._exit`` (the whole process is the worker), while
    in-process test agents instead sever every connection and stop
    accepting — indistinguishable from process death on the wire.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 hard_exit: bool = False):
        self.hard_exit = hard_exit
        self.service = _make_worker_service()
        self._conn_lock = threading.Lock()
        self._conns: set = set()
        self._closed = False
        self._server = _AgentServer((host, port), _make_agent_handler(self))
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> str:
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    def start(self) -> "WorkerAgent":
        """Serve on a background thread; returns self (tests/embedding)."""
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-worker-agent",
                                        daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._server.serve_forever()

    # ------------------------------------------------------------- lifecycle
    def _track(self, connection) -> None:
        with self._conn_lock:
            self._conns.add(connection)

    def _untrack(self, connection) -> None:
        with self._conn_lock:
            self._conns.discard(connection)

    def die(self) -> None:
        """Simulate process death in-process: sever every live
        connection mid-frame and stop accepting (reconnects are refused).
        The wire picture is identical to a SIGKILLed agent."""
        with self._conn_lock:
            conns = list(self._conns)
        for connection in conns:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:
                pass
        self._server.shutdown()
        self._server.server_close()

    def _crash(self) -> None:
        """A scripted chaos crash fault fired on this agent."""
        if self.hard_exit:
            os._exit(17)
        self.die()

    def close(self) -> None:
        """Stop serving and release the agent's service (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self.service.close()


def _make_worker_service():
    """The agent's store-less measurement service (late import: the
    service module imports backends, which lazily imports us)."""
    from .service import ResilienceService
    return ResilienceService(use_store=False)


def _make_agent_handler(agent: WorkerAgent):
    class Handler(socketserver.StreamRequestHandler):
        """One worker connection: the procpool framed loop over TCP.

        Mirrors :func:`repro.api.backends._pool_worker_main` frame for
        frame (heartbeats, error envelopes, the chaos rider), prefixed
        by the hello greeting.
        """

        def handle(self) -> None:  # noqa: D102 — socketserver API
            agent._track(self.connection)
            try:
                self._serve_connection()
            finally:
                agent._untrack(self.connection)

        def _serve_connection(self) -> None:
            write_lock = threading.Lock()

            def emit(document) -> None:
                text = (document if isinstance(document, str)
                        else json.dumps(document, sort_keys=True))
                with write_lock:
                    # lint: allow(lock-blocking-call): serializing this write IS the lock's job — the heartbeat thread shares the channel
                    self.wfile.write((text + "\n").encode())
                    # lint: allow(lock-blocking-call): the flush completes the frame the lock serializes
                    self.wfile.flush()

            try:
                emit({"hello": {"schema": SCHEMA_VERSION,
                                "pid": os.getpid()}})
                for raw in self.rfile:
                    line = raw.decode(errors="replace")
                    if not line.strip():
                        continue
                    try:
                        document = json.loads(line)
                    except ValueError:
                        emit({"error": f"undecodable frame: "
                                       f"{line.strip()[:120]!r}"})
                        continue
                    if not isinstance(document, dict):
                        emit({"error": f"non-object frame: "
                                       f"{line.strip()[:120]!r}"})
                        continue
                    chaos = (document.get("chaos")
                             if "request" in document else None)
                    payload = document.get("request", document)
                    kind = chaos["kind"] if chaos is not None else None
                    if kind == "crash-before":
                        agent._crash()
                        return
                    if kind == "hang":
                        # No heartbeats, no progress: indistinguishable
                        # from a genuinely wedged agent.  The client's
                        # watchdog severs the channel.
                        time.sleep(3600)
                    stop_beat = threading.Event()
                    beat_thread = threading.Thread(
                        target=_heartbeat_loop, args=(emit, stop_beat),
                        daemon=True)
                    beat_thread.start()
                    try:
                        result = agent.service.run(
                            AnalysisRequest.from_payload(payload))
                        envelope = {"ok": result.to_payload()}
                    except Exception as exc:  # noqa: BLE001 — reported to the client
                        envelope = {"error": f"{type(exc).__name__}: {exc}"}
                    finally:
                        # Joined before the envelope is emitted, so no
                        # stale heartbeat ever follows a result frame.
                        stop_beat.set()
                        beat_thread.join(timeout=5)
                    if kind == "crash-after":
                        agent._crash()
                        return
                    if kind == "corrupt":
                        emit("{corrupt frame" + "x" * 16)
                        continue
                    emit(envelope)
            except (OSError, ValueError):
                # The peer hung up (or the agent died under us) — the
                # client classifies the loss; nothing to answer here.
                return

    return Handler


# ------------------------------------------------------- remote-pool client
class _TcpChannel:
    """One pooled TCP connection to a worker agent.

    The wire twin of :class:`repro.api.backends._PoolWorker`: same
    framed :meth:`measure` round trip, same heartbeat bookkeeping for
    the supervision watchdog, same :meth:`kill` verdict recording —
    except "kill" here severs the socket (unblocking the reader)
    instead of SIGKILLing a child process.
    """

    def __init__(self, address: tuple[str, int],
                 connect_timeout: float = 5.0):
        self.address = address
        self.describe = f"{address[0]}:{address[1]}"
        self.last_beat = time.monotonic()
        self.killed_reason: str | None = None
        self.killed_preempted = False
        self._closed = False
        # Held for the channel's whole life; kill()/close() release it.
        self.sock = socket.create_connection(address,
                                             timeout=connect_timeout)
        try:
            self._reader = self.sock.makefile("r", encoding="utf-8")
            self._writer = self.sock.makefile("w", encoding="utf-8")
            greeting = self._reader.readline()
            if not greeting:
                raise WorkerCrashed(
                    f"remote worker {self.describe} closed the "
                    f"connection during the greeting")
            try:
                hello = json.loads(greeting)["hello"]
                schema = hello["schema"]
            except (ValueError, KeyError, TypeError):
                raise WorkerCrashed(
                    f"remote worker {self.describe} sent a non-protocol "
                    f"greeting ({greeting.strip()[:120]!r}); is a "
                    f"'repro worker' agent listening there?") from None
            if schema != SCHEMA_VERSION:
                raise BackendError(
                    f"remote worker {self.describe} speaks schema "
                    f"{schema!r}; this client requires {SCHEMA_VERSION!r}")
            self.pid = hello.get("pid")
            # The connect timeout covered dial + greeting; measurements
            # are unbounded on the socket — the supervision watchdog
            # owns liveness from here.
            self.sock.settimeout(None)
        except BaseException:
            self.close()
            raise

    def alive(self) -> bool:
        return not self._closed and self.killed_reason is None

    def kill(self, reason: str, *, preempted: bool = False) -> None:
        """Watchdog/scheduler teardown: record the verdict, then sever
        the socket (which unblocks any reader mid-``readline``)."""
        self.killed_reason = reason
        self.killed_preempted = preempted
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def _lost(self, detail: str) -> BackendError:
        """The channel broke: classify watchdog kill vs peer death."""
        if self.killed_reason is not None:
            if self.killed_preempted:
                return WorkerPreempted(self.killed_reason)
            return WorkerTimeout(self.killed_reason)
        return WorkerCrashed(detail)

    def measure(self, request: AnalysisRequest,
                chaos: dict | None = None) -> AnalysisResult:
        """One framed request/response round trip (raises on loss)."""
        self.last_beat = time.monotonic()
        if chaos is None:
            frame = request.to_json()
        else:
            frame = json.dumps({"request": request.to_payload(),
                                "chaos": chaos}, sort_keys=True)
        try:
            self._writer.write(frame + "\n")
            self._writer.flush()
            while True:
                line = self._reader.readline()
                if not line:
                    raise self._lost(
                        f"remote worker {self.describe} closed the "
                        f"connection mid-request")
                try:
                    envelope = json.loads(line)
                except ValueError:
                    raise WorkerCrashed(
                        f"remote worker {self.describe} emitted a "
                        f"corrupted frame "
                        f"({line.strip()[:120]!r})") from None
                if "hb" in envelope:
                    self.last_beat = time.monotonic()
                    continue
                if "error" in envelope:
                    raise BackendError(
                        f"remote worker {self.describe} failed: "
                        f"{envelope['error']}")
                return AnalysisResult.from_payload(envelope["ok"])
        except (OSError, ValueError) as exc:
            raise self._lost(
                f"remote worker {self.describe} socket failed "
                f"({exc})") from None

    def close(self) -> None:
        self._closed = True
        for stream in (getattr(self, "_reader", None),
                       getattr(self, "_writer", None)):
            try:
                if stream is not None:
                    stream.close()
            except OSError:
                pass  # flush into a severed socket; already lost
        try:
            self.sock.close()
        except OSError:
            pass


class RemotePoolBackend(ExecutionBackend):
    """Dispatch shards to a configured set of TCP worker agents.

    The procpool's semantics over the network (see module docstring):
    pooled warm channels, lazy round-robin dialing, supervision with
    deadline + heartbeat staleness, retryable loss classification, and
    preemption via channel severing.  A peer that refuses or drops a
    connection is marked dead for ``dead_cooldown`` seconds so retries
    reconnect *elsewhere* first; a fully-unreachable fleet raises the
    retryable :class:`~repro.api.resilience.WorkerCrashed` (the retry
    backoff doubles as the reconnect probe interval).

    **Lock ordering** (checked by ``repro lint`` and the runtime lock
    witness): ``_lock`` is a leaf guarding the idle list, the dead map
    and the counters.  Dialing, measuring, severing and closing channels
    all happen with the lock dropped — never call into a socket while
    holding ``_lock``.
    """

    name = "remote-pool"
    supports_preempt = True
    #: Scripted chaos faults ride the wire to the agent (the
    #: :class:`~repro.api.backends.ChaosBackend` real-injection path).
    chaos_rider = True

    def __init__(self, workers, max_parallel: int = 0, *,
                 heartbeat_grace: float | None = 10.0,
                 poll_interval: float = 0.1,
                 connect_timeout: float = 5.0,
                 dead_cooldown: float = 5.0):
        addresses = tuple(parse_worker_address(worker)
                          for worker in (workers or ()))
        if not addresses:
            raise ValueError(
                "the remote-pool backend needs at least one worker "
                "address (workers=['HOST:PORT', ...]); start agents "
                "with 'repro worker --listen HOST:PORT'")
        self.addresses = addresses
        # Two in-flight shards per configured agent by default: one
        # measuring, one queued behind it on the agent's accept loop.
        self.parallel = (int(max_parallel)
                         or max(DEFAULT_MAX_PARALLEL, 2 * len(addresses)))
        self.heartbeat_grace = heartbeat_grace
        self.connect_timeout = float(connect_timeout)
        self.dead_cooldown = float(dead_cooldown)
        self._dispatch = ThreadBackend(self.parallel)
        self._supervisor = WorkerSupervisor(poll_interval=poll_interval)
        self._idle: list[_TcpChannel] = []
        self._dead: dict[tuple[str, int], float] = {}
        self._next = 0
        self._lock = threading.Lock()
        self._closed = False
        self._restarts = 0
        self._connected = 0
        self._busy = 0

    @property
    def worker_restarts(self) -> int:
        """Cumulative lost-channel replacements (crashes + timeouts)."""
        with self._lock:
            return self._restarts

    def pool_snapshot(self) -> dict:
        """Live pool shape for health/queue surfaces."""
        now = time.monotonic()
        with self._lock:
            idle = len(self._idle)
            busy = self._busy
            workers = [
                {"address": f"{host}:{port}",
                 "dead": (now - self._dead.get((host, port), -1e9)
                          < self.dead_cooldown)}
                for host, port in self.addresses]
            return {"size": idle + busy, "busy": busy, "idle": idle,
                    "max": self.parallel, "connected": self._connected,
                    "workers": workers}

    def submit(self, request: AnalysisRequest, runner: Runner, *,
               on_start: Callable[[], None] | None = None,
               chaos: dict | None = None, preempt=None):
        _reject_session_ref(self.name, request)

        def run(req: AnalysisRequest, _chaos=chaos,
                _preempt=preempt) -> AnalysisResult:
            return self._run_on_channel(req, chaos=_chaos,
                                        preempt=_preempt)

        return self._dispatch.submit(request, run, on_start=on_start)

    # --------------------------------------------------------------- pooling
    def _borrow(self) -> _TcpChannel:
        stale: list[_TcpChannel] = []
        channel: _TcpChannel | None = None
        with self._lock:
            if self._closed:
                raise BackendError("remote-pool backend is closed")
            self._busy += 1
            while self._idle:
                candidate = self._idle.pop()  # newest first: warmest
                if candidate.alive():
                    channel = candidate
                    break
                stale.append(candidate)
        for dead in stale:
            dead.close()
        if channel is not None:
            return channel
        try:
            return self._connect()
        except BaseException:
            with self._lock:
                self._busy -= 1
            raise

    def _connect(self) -> _TcpChannel:
        """Dial the next reachable agent (round-robin, dead last)."""
        now = time.monotonic()
        with self._lock:
            start = self._next
            self._next += 1
            dead = dict(self._dead)
        order = [self.addresses[(start + offset) % len(self.addresses)]
                 for offset in range(len(self.addresses))]
        fresh = [address for address in order
                 if now - dead.get(address, -1e9) >= self.dead_cooldown]
        # With the whole fleet in cooldown there is nothing to prefer —
        # probe everyone rather than guaranteeing failure.
        errors = []
        for address in fresh or order:
            try:
                channel = _TcpChannel(address,
                                      connect_timeout=self.connect_timeout)
            except (OSError, WorkerCrashed) as exc:
                errors.append(f"{address[0]}:{address[1]} ({exc})")
                with self._lock:
                    self._dead[address] = time.monotonic()
                continue
            with self._lock:
                self._dead.pop(address, None)
                self._connected += 1
            return channel
        raise WorkerCrashed(
            "no reachable remote worker: " + "; ".join(errors))

    def _run_on_channel(self, request: AnalysisRequest,
                        chaos: dict | None = None,
                        preempt=None) -> AnalysisResult:
        if preempt is not None and preempt.is_set():
            raise WorkerPreempted(preempt.reason or
                                  "shard preempted before dispatch")
        channel = self._borrow()
        describe = (f"shard {request.fingerprint()[:12]} "
                    f"on {channel.describe}")
        timeout = request.options.shard_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        token = self._supervisor.watch(
            kill=channel.kill, describe=describe, deadline=deadline,
            beat=lambda: channel.last_beat, grace=self.heartbeat_grace)
        hook = None
        if preempt is not None:
            def hook(reason, _channel=channel):
                _channel.kill(reason or "shard preempted", preempted=True)
            preempt.add_hook(hook)
        try:
            result = channel.measure(request, chaos=chaos)
        except BaseException as error:
            channel.close()          # never reuse a suspect channel
            with self._lock:
                self._busy -= 1
            if isinstance(error, WorkerCrashed) \
                    and not isinstance(error, WorkerPreempted):
                with self._lock:
                    self._dead[channel.address] = time.monotonic()
                    self._restarts += 1
                    restarts = self._restarts
                logger.warning(
                    "remote worker lost on %s (%s: %s); the next borrow "
                    "reconnects elsewhere (worker_restarts=%d)",
                    describe, type(error).__name__, error, restarts)
            raise
        finally:
            if hook is not None:
                preempt.remove_hook(hook)
            self._supervisor.unwatch(token)
        with self._lock:
            self._busy -= 1
            if not self._closed:
                self._idle.append(channel)
                channel = None
        if channel is not None:
            channel.close()
        return result

    def close(self) -> None:
        self._dispatch.close()       # waits for in-flight borrows
        self._supervisor.close()
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for channel in idle:
            channel.close()


# ------------------------------------------------------------- coordinator
class NodeUnreachable(RemoteError):
    """A fleet node did not answer (refused, reset, or timed out)."""


@dataclass
class _JobRecord:
    """What the coordinator remembers about one routed job."""

    node: str
    payload: bytes | None = None
    priority: int = 0
    client_id: str | None = None


class ClusterCoordinator:
    """Federate several ``repro serve`` nodes behind one node-shaped API.

    Routing: each node contributes ``ring_points`` virtual points on a
    consistent-hash ring; a submission walks the ring from its request
    fingerprint, skipping draining (503) and unreachable nodes, and the
    first node to accept owns the job.  Because job ids are
    content-addressed store keys, ownership is a *routing hint*, not a
    correctness requirement — any node answers any job id by store
    lookup, and :meth:`_reroute` resubmits a lost node's recorded
    request elsewhere under the very same job id.

    **Lock ordering**: ``_lock`` is a leaf guarding ``_jobs``/``_down``;
    no node I/O ever happens while holding it.
    """

    def __init__(self, nodes, *, probe_timeout: float = 5.0,
                 request_timeout: float = 600.0,
                 down_cooldown: float = 10.0, ring_points: int = 64):
        self.nodes = tuple(str(node).rstrip("/") for node in nodes)
        if not self.nodes:
            raise ValueError("the coordinator needs at least one node "
                             "URL (repro coordinate --node http://...)")
        self.probe_timeout = float(probe_timeout)
        self.request_timeout = float(request_timeout)
        self.down_cooldown = float(down_cooldown)
        self._ring = sorted(
            (self._point(f"{url}#{index}"), url)
            for url in self.nodes for index in range(ring_points))
        self._jobs: dict[str, _JobRecord] = {}
        self._down: dict[str, float] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------ transport
    def _node_request(self, url: str, path: str, *,
                      data: bytes | None = None,
                      headers: dict | None = None,
                      timeout: float | None = None):
        """One proxied round trip → ``(status, headers, body)``.

        HTTP error statuses pass through (the node's 4xx/5xx answer *is*
        the answer); only transport failure raises
        :class:`NodeUnreachable`.
        """
        request = urllib.request.Request(url + path, data=data,
                                         headers=headers or {})
        try:
            with urllib.request.urlopen(
                    request, timeout=timeout or self.probe_timeout) \
                    as response:
                return response.status, response.headers, response.read()
        except urllib.error.HTTPError as exc:
            with exc:
                return exc.code, exc.headers, exc.read()
        except (urllib.error.URLError, OSError) as exc:
            reason = getattr(exc, "reason", exc)
            raise NodeUnreachable(
                f"fleet node {url} is unreachable: {reason}") from None

    # -------------------------------------------------------------- routing
    @staticmethod
    def _point(label: str) -> int:
        return int(hashlib.sha256(label.encode()).hexdigest()[:16], 16)

    def _ring_order(self, key: str) -> list[str]:
        """Node URLs in ring preference order for ``key``."""
        index = bisect.bisect(self._ring, (self._point(key), ""))
        seen: set[str] = set()
        order: list[str] = []
        for offset in range(len(self._ring)):
            _, url = self._ring[(index + offset) % len(self._ring)]
            if url not in seen:
                seen.add(url)
                order.append(url)
        return order

    def _route(self, key: str) -> list[str]:
        """Ring order, with recently-lost nodes demoted to the end."""
        order = self._ring_order(key)
        now = time.monotonic()
        with self._lock:
            down = {url for url, lost in self._down.items()
                    if now - lost < self.down_cooldown}
        return ([url for url in order if url not in down]
                + [url for url in order if url in down])

    def _note_down(self, url: str) -> None:
        with self._lock:
            self._down[url] = time.monotonic()

    def _note_up(self, url: str) -> None:
        with self._lock:
            self._down.pop(url, None)

    # --------------------------------------------------------------- verbs
    def submit(self, body: bytes, *, priority: int = 0,
               client_id: str | None = None):
        """Route one submission; returns ``(status, headers, body)``."""
        payload = json.loads(body.decode() or "{}")
        request = AnalysisRequest.from_payload(payload)
        if request.model.session is not None:
            raise ValueError(
                f"session ref {request.model.key!r} cannot be served "
                f"remotely: in-memory models do not cross the wire (use "
                f"benchmark=/preset= refs)")
        query = f"?priority={int(priority)}" if priority else ""
        headers = {"Content-Type": "application/json"}
        if client_id is not None:
            headers["X-Repro-Client"] = client_id
        failures = []
        for url in self._route(request.fingerprint()):
            try:
                status, node_headers, node_body = self._node_request(
                    url, "/v1/submit" + query, data=body, headers=headers,
                    timeout=self.request_timeout)
            except NodeUnreachable as exc:
                failures.append(str(exc))
                self._note_down(url)
                continue
            if status == 503:
                failures.append(f"fleet node {url} is draining")
                continue
            if status != 200:
                # The node's own verdict (400 bad request, 429 full
                # queue) — deterministic, not routing's to hide.
                return status, node_headers, node_body
            self._note_up(url)
            answer = json.loads(node_body)
            with self._lock:
                self._jobs[answer["job"]] = _JobRecord(
                    node=url, payload=body, priority=int(priority),
                    client_id=client_id)
            answer["node"] = url
            return (200, node_headers,
                    json.dumps(answer, sort_keys=True).encode())
        raise NodeUnreachable(
            "no live fleet node accepted the submission: "
            + "; ".join(failures))

    def locate(self, job: str) -> _JobRecord:
        """The job's owner record; probes every node for jobs this
        coordinator never routed (any node answers any id by store
        lookup).  Raises ``KeyError`` when nowhere knows it."""
        with self._lock:
            record = self._jobs.get(job)
        if record is not None:
            return record
        for url in self._route(job):
            try:
                status, _, _ = self._node_request(
                    url, f"/v1/status/{job}", timeout=self.probe_timeout)
            except NodeUnreachable:
                self._note_down(url)
                continue
            if status == 200:
                with self._lock:
                    return self._jobs.setdefault(job, _JobRecord(node=url))
        raise KeyError(job)

    def _reroute(self, job: str, dead: str) -> str | None:
        """Resubmit a lost node's job elsewhere (same content-addressed
        id); returns the new owner URL or ``None``."""
        self._note_down(dead)
        with self._lock:
            record = self._jobs.get(job)
        if record is None or record.payload is None:
            return None
        query = (f"?priority={record.priority}" if record.priority else "")
        headers = {"Content-Type": "application/json"}
        if record.client_id is not None:
            headers["X-Repro-Client"] = record.client_id
        for url in self._route(job):
            if url == dead:
                continue
            try:
                status, _, body = self._node_request(
                    url, "/v1/submit" + query, data=record.payload,
                    headers=headers, timeout=self.request_timeout)
            except NodeUnreachable:
                self._note_down(url)
                continue
            if status != 200:
                continue
            resubmitted = json.loads(body)["job"]
            with self._lock:
                record.node = url
            logger.warning(
                "fleet node %s lost job %s; resubmitted to %s (same "
                "content-addressed id: %s)", dead, job, url, resubmitted)
            return url
        return None

    def proxy_job(self, job: str, path: str, *, data: bytes | None = None,
                  timeout: float | None = None):
        """Proxy a per-job endpoint to its owner, rerouting around a
        dead node; returns ``(status, headers, body)``."""
        record = self.locate(job)
        for _ in range(len(self.nodes)):
            node = record.node
            try:
                return self._node_request(node, path, data=data,
                                          timeout=timeout
                                          or self.request_timeout)
            except NodeUnreachable:
                if self._reroute(job, node) is None:
                    raise
        raise NodeUnreachable(
            f"no live fleet node can answer job {job!r}")

    def health_payload(self) -> dict:
        """Per-node health aggregation (the coordinator's own
        ``/v1/health`` answer)."""
        nodes: dict[str, dict] = {}
        live = 0
        for url in self.nodes:
            try:
                status, _, body = self._node_request(
                    url, "/v1/health", timeout=self.probe_timeout)
            except NodeUnreachable as exc:
                self._note_down(url)
                nodes[url] = {"ok": False, "error": str(exc)}
                continue
            try:
                payload = json.loads(body)
            except ValueError:
                nodes[url] = {"ok": False,
                              "error": f"malformed health body "
                                       f"(HTTP {status})"}
                continue
            if status == 200:
                live += 1
                self._note_up(url)
            nodes[url] = payload
        return {"ok": live > 0, "coordinator": True,
                "schema": SCHEMA_VERSION, "live": live, "nodes": nodes}

    def inspect(self) -> dict:
        """The first reachable node's store inspection."""
        for url in self._route("inspect"):
            try:
                status, _, body = self._node_request(
                    url, "/v1/inspect", timeout=self.probe_timeout)
            except NodeUnreachable:
                self._note_down(url)
                continue
            if status == 200:
                return json.loads(body)
        raise NodeUnreachable("no live fleet node answered /v1/inspect")

    def stream_events(self, job: str, after: int = 0,
                      embed_partial: bool = True):
        """Yield one ndjson line per event, splicing across node loss.

        Serves at most one upstream silence slice per silent stretch —
        the consumer's own reconnect logic (``after=<last seq>``)
        resumes, exactly as against a single node.  Losing the owner
        mid-stream synthesizes a ``node_lost`` event at the splice
        point, reroutes, and continues from the new owner with
        ``after=0`` (sequence numbers restart; duplicated ``shard_done``
        frames are harmless by the monotonic-merge guarantee).
        """
        record = self.locate(job)
        last_seq = after
        suffix = "" if embed_partial else "&embed_partial=0"
        while True:
            node = record.node
            try:
                request = urllib.request.Request(
                    f"{node}/v1/events/{job}?after={last_seq}{suffix}")
                with urllib.request.urlopen(
                        request,
                        timeout=WAIT_SLICE_SECONDS + 15.0) as response:
                    for raw in response:
                        line = raw.strip()
                        if not line:
                            continue
                        document = json.loads(line)
                        last_seq = int(document.get("seq", last_seq))
                        yield line.decode() + "\n"
                        if document.get("kind") in TERMINAL_EVENTS:
                            return
                return  # silent slice: the consumer reconnects
            except (urllib.error.URLError, OSError,
                    http.client.HTTPException, ValueError) as exc:
                reason = str(getattr(exc, "reason", exc))
                fresh = self._reroute(job, node)
                lost = AnalysisEvent(
                    kind="node_lost", job=job, seq=last_seq + 1,
                    created=time.time(),
                    payload={"node": node, "error": reason,
                             "resubmitted": fresh is not None})
                yield lost.to_json() + "\n"
                if fresh is None:
                    terminal = AnalysisEvent(
                        kind="error", job=job, seq=last_seq + 2,
                        created=time.time(),
                        payload={"error": f"fleet node {node} was lost "
                                          f"and the job could not be "
                                          f"resubmitted: {reason}"})
                    yield terminal.to_json() + "\n"
                    return
                last_seq = 0


class CoordinatorServer:
    """Serve one :class:`ClusterCoordinator` over HTTP.

    The surface is the node API itself (same endpoints, same status
    codes, same headers), so :class:`~repro.api.server.RemoteService`
    pointed at a coordinator behaves exactly as against a single node.
    """

    def __init__(self, coordinator: ClusterCoordinator, *,
                 host: str = "127.0.0.1", port: int = 0):
        self.coordinator = coordinator
        self._closed = False
        handler = _make_coordinator_handler(coordinator)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "CoordinatorServer":
        """Serve on a background thread; returns self."""
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-coordinate",
                                        daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop serving (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)


def _make_coordinator_handler(coordinator: ClusterCoordinator):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *args) -> None:  # noqa: D102
            pass

        def _reply(self, code: int, payload: dict | str,
                   headers: dict | None = None) -> None:
            body = (payload if isinstance(payload, str)
                    else json.dumps(payload, sort_keys=True))
            data = body.encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)

        def _error(self, code: int, message: str) -> None:
            self._reply(code, {"error": message})

        def _forward(self, status: int, headers, body: bytes) -> None:
            """Re-send a node's answer under coordinator framing."""
            content_type = "application/json"
            if headers is not None and headers.get("Content-Type"):
                content_type = headers.get("Content-Type")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name in ("X-Repro-From-Cache", "Retry-After"):
                value = (headers.get(name) if headers is not None
                         else None)
                if value is not None:
                    self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        # ----------------------------------------------------------- routes
        def do_GET(self) -> None:  # noqa: N802 — http.server API
            try:
                path, _, query = self.path.partition("?")
                if path == "/v1/health":
                    self._reply(200, coordinator.health_payload())
                    return
                if path == "/v1/inspect":
                    self._reply(200, coordinator.inspect())
                    return
                if path.startswith("/v1/events/"):
                    self._events_route(path[len("/v1/events/"):], query)
                    return
                for prefix in ("/v1/status/", "/v1/result/",
                               "/v1/partial/"):
                    if path.startswith(prefix):
                        job = path[len(prefix):]
                        suffix = f"?{query}" if query else ""
                        status, headers, body = coordinator.proxy_job(
                            job, path + suffix,
                            timeout=WAIT_SLICE_SECONDS
                            + coordinator.probe_timeout + 15.0)
                        self._forward(status, headers, body)
                        return
                self._error(404, f"unknown endpoint {path!r}")
            except KeyError as exc:
                job = exc.args[0] if exc.args else "?"
                self._error(404, f"unknown job {job!r}")
            except NodeUnreachable as exc:
                self._error(502, str(exc))
            except Exception as exc:  # noqa: BLE001 — must answer the socket
                self._error(500, str(exc))

        def _events_route(self, job: str, query: str) -> None:
            params = urllib.parse.parse_qs(query)
            try:
                values = params.get("after")
                after = int(values[-1]) if values else 0
            except ValueError:
                after = 0
            embed = (params.get("embed_partial", ["1"])[-1]
                     not in ("0", "false"))
            # Resolve the owner *before* committing to a 200 chunked
            # reply — an unknown job must still answer 404.
            coordinator.locate(job)
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            try:
                for line in coordinator.stream_events(
                        job, after=after, embed_partial=embed):
                    self._write_chunk(line)
                self.wfile.write(b"0\r\n\r\n")
            except (BrokenPipeError, ConnectionResetError):
                # The client hung up mid-stream — nothing to answer.
                self.close_connection = True

        def _write_chunk(self, text: str) -> None:
            data = text.encode()
            self.wfile.write(f"{len(data):x}\r\n".encode())
            self.wfile.write(data)
            self.wfile.write(b"\r\n")

        def do_POST(self) -> None:  # noqa: N802 — http.server API
            try:
                path, _, query = self.path.partition("?")
                if path.startswith("/v1/cancel/"):
                    job = path[len("/v1/cancel/"):]
                    status, headers, body = coordinator.proxy_job(
                        job, "/v1/cancel/" + job, data=b"",
                        timeout=coordinator.probe_timeout + 15.0)
                    self._forward(status, headers, body)
                    return
                if path != "/v1/submit":
                    self._error(404, f"unknown endpoint {self.path!r}")
                    return
                length = int(self.headers.get("Content-Length", 0))
                body = self.rfile.read(length)
                try:
                    values = urllib.parse.parse_qs(query).get("priority")
                    priority = int(values[-1]) if values else 0
                    client = self.headers.get("X-Repro-Client") or None
                    status, headers, answer = coordinator.submit(
                        body, priority=priority, client_id=client)
                except (ValueError, KeyError, TypeError) as exc:
                    self._error(400, str(exc))
                    return
                self._forward(status, headers, answer)
            except KeyError as exc:
                job = exc.args[0] if exc.args else "?"
                self._error(404, f"unknown job {job!r}")
            except NodeUnreachable as exc:
                self._error(502, str(exc))
            except Exception as exc:  # noqa: BLE001 — must answer the socket
                self._error(500, str(exc))

    return Handler
