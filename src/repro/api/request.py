"""Declarative analysis requests and JSON-round-trippable results.

The paper's methodology is a pipeline of resilience *queries* — group
sweeps, layer sweeps, ablation points — that the experiment scripts used
to issue as direct calls into :mod:`repro.core.resilience`.  This module
gives those queries a declarative, serialisable shape:

:class:`AnalysisRequest`
    *What* to measure: a model reference, a target set (groups or
    group × layer pairs), the NM/NA grid, the seed, and the execution
    options.  Requests are frozen, hashable via :meth:`~AnalysisRequest.
    fingerprint` (SHA-256 over the canonical payload, with
    result-invariant knobs normalised away), and round-trip through a
    versioned JSON schema.

:class:`AnalysisResult`
    *What was measured*: one :class:`~repro.core.resilience.
    ResilienceCurve` per target plus provenance (the request, the model
    parameter/buffer CRC fingerprint, the dataset CRC, timings).  Also
    JSON-round-trippable, which is what makes the persistent
    :class:`~repro.api.store.ResultStore` possible.

:class:`PartialResult`
    *What has been measured so far*: the merged-so-far curves of a
    still-running request, one snapshot per completed shard.  Partials
    merge **monotonically** — the set of measured (target, NM) points
    only ever grows, and a point's value never changes once it appears —
    and the final merge is byte-identical to the blocking
    :class:`AnalysisResult` (both are assembled by the same
    shard-concatenation code path).  Schema-versioned and
    JSON-round-trippable like everything else on the wire.

Schema versioning: every payload carries ``{"schema": SCHEMA_VERSION}``.
Loading a payload from a different version raises — the store treats such
entries as misses rather than guessing at migrations.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..core.resilience import PAPER_NM_SWEEP, ResilienceCurve, ResiliencePoint
from ..core.sweep import ExecutionOptions, SweepTarget

__all__ = ["SCHEMA_VERSION", "NOISE_KINDS", "ModelRef", "AnalysisRequest",
           "AnalysisResult", "PartialResult", "SchemaError"]

#: Version of the request/result JSON schema.  Bump on breaking changes.
SCHEMA_VERSION = 1

#: Supported noise models.  ``gaussian`` is the paper's Eq. 3-4 model
#: (``nm_values`` is the NM grid); ``quantization`` injects the Eq. 1
#: fixed-point round-trip error (``nm_values`` holds the word lengths).
NOISE_KINDS: tuple[str, ...] = ("gaussian", "quantization")


class SchemaError(ValueError):
    """A payload does not match the supported schema version."""


@dataclass(frozen=True)
class ModelRef:
    """A serialisable reference to a (model, test dataset) pair.

    Exactly one addressing mode must be used:

    ``benchmark``
        A paper benchmark label (Table II), e.g. ``"DeepCaps/CIFAR-10"``,
        resolved through :func:`repro.zoo.benchmark_entry`.
    ``preset`` + ``dataset``
        Zoo coordinates resolved through :func:`repro.zoo.get_trained`
        with its default training knobs.
    ``session``
        An in-memory model/dataset pair previously registered on a
        :class:`~repro.api.service.ResilienceService` under this name
        (used by :class:`~repro.core.methodology.ReDCaNe`).  Session
        results are still safely cacheable: the store key also carries
        the model-weights CRC and the dataset CRC.
    """

    benchmark: str | None = None
    preset: str | None = None
    dataset: str | None = None
    session: str | None = None

    def __post_init__(self) -> None:
        zoo = self.preset is not None or self.dataset is not None
        modes = ((self.benchmark is not None) + zoo
                 + (self.session is not None))
        if modes != 1:
            raise ValueError(
                "ModelRef needs exactly one of benchmark=, preset=+dataset=, "
                f"or session= (got {self!r})")
        if zoo and (self.preset is None or self.dataset is None):
            raise ValueError("zoo ModelRefs need both preset= and dataset=")

    @property
    def key(self) -> str:
        """Stable string identity used for engine caching and display."""
        if self.benchmark is not None:
            return f"benchmark:{self.benchmark}"
        if self.session is not None:
            return f"session:{self.session}"
        return f"zoo:{self.preset}/{self.dataset}"

    def to_payload(self) -> dict:
        return {name: value for name, value in (
            ("benchmark", self.benchmark), ("preset", self.preset),
            ("dataset", self.dataset), ("session", self.session))
            if value is not None}

    @classmethod
    def from_payload(cls, payload: dict) -> "ModelRef":
        return cls(**payload)


def _normalize_targets(targets) -> tuple[SweepTarget, ...]:
    """Accept strings, ``(group, layer)`` pairs or :class:`SweepTarget`."""
    normalized = []
    for target in targets:
        if isinstance(target, SweepTarget):
            normalized.append(target)
        elif isinstance(target, str):
            normalized.append(SweepTarget(target))
        else:
            normalized.append(SweepTarget(*target))
    return tuple(normalized)


@dataclass(frozen=True)
class AnalysisRequest:
    """One declarative resilience query (see module docstring).

    ``eval_samples`` limits evaluation to the first N test samples
    (``None`` = the ref's full test set); ``baseline_accuracy`` pins the
    drop reference (``None`` = the measured clean accuracy).  Both affect
    the result, so both enter the fingerprint.
    """

    model: ModelRef
    targets: tuple[SweepTarget, ...]
    nm_values: tuple[float, ...] = PAPER_NM_SWEEP
    na: float = 0.0
    seed: int = 0
    eval_samples: int | None = None
    baseline_accuracy: float | None = None
    noise: str = "gaussian"
    options: ExecutionOptions = ExecutionOptions()

    def __post_init__(self) -> None:
        object.__setattr__(self, "targets", _normalize_targets(self.targets))
        object.__setattr__(self, "nm_values",
                           tuple(float(nm) for nm in self.nm_values))
        if not self.targets:
            raise ValueError("AnalysisRequest needs at least one target")
        if not self.nm_values:
            raise ValueError("AnalysisRequest needs at least one nm value")
        if self.noise not in NOISE_KINDS:
            raise ValueError(f"unknown noise kind {self.noise!r}; "
                             f"valid: {list(NOISE_KINDS)}")

    @property
    def client_id(self) -> str | None:
        """The submitting tenant (``options.client_id``); ``None`` means
        the anonymous default tenant.  Carried on the wire, excluded
        from :meth:`fingerprint` — identical work by different tenants
        shares one cache entry."""
        return self.options.client_id

    # -------------------------------------------------------- serialisation
    def to_payload(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "model": self.model.to_payload(),
            "targets": [[t.group, t.layer] for t in self.targets],
            "nm_values": list(self.nm_values),
            "na": self.na,
            "seed": self.seed,
            "eval_samples": self.eval_samples,
            "baseline_accuracy": self.baseline_accuracy,
            "noise": self.noise,
            "options": self.options.to_payload(),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "AnalysisRequest":
        schema = payload.get("schema")
        if schema != SCHEMA_VERSION:
            raise SchemaError(f"unsupported request schema {schema!r} "
                              f"(supported: {SCHEMA_VERSION})")
        return cls(
            model=ModelRef.from_payload(payload["model"]),
            targets=tuple(tuple(target) for target in payload["targets"]),
            nm_values=tuple(payload["nm_values"]),
            na=payload["na"], seed=payload["seed"],
            eval_samples=payload["eval_samples"],
            baseline_accuracy=payload["baseline_accuracy"],
            noise=payload.get("noise", "gaussian"),
            options=ExecutionOptions.from_payload(payload["options"]))

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AnalysisRequest":
        return cls.from_payload(json.loads(text))

    # -------------------------------------------------------------- hashing
    def fingerprint(self) -> str:
        """SHA-256 over the canonical, result-affecting payload.

        Differs from :meth:`to_payload` in two ways: the execution
        options collapse to :meth:`~repro.core.sweep.ExecutionOptions.
        cache_key`, so result-invariant knobs (``workers``; ``naive`` vs
        ``cached``; ``shared_votes`` outside the stacked tier) hash
        identically — and session *names* are erased, because they are
        handles rather than content: the store key's model and dataset
        CRCs already identify the registered pair, so sessions holding
        identical weights and data share cache entries regardless of the
        name they registered under (this is what lets
        :class:`~repro.core.methodology.ReDCaNe` register collision-free
        per-run names without losing warm starts across runs).
        """
        payload = self.to_payload()
        payload["options"] = self.options.cache_key()
        if self.model.session is not None:
            payload["model"] = {"session": "*"}
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:20]


def _curve_to_payload(curve: ResilienceCurve) -> dict:
    return {
        "group": curve.group,
        "layer": curve.layer,
        "baseline_accuracy": curve.baseline_accuracy,
        "points": [[p.nm, p.na, p.accuracy, p.accuracy_drop]
                   for p in curve.points],
    }


def _curve_from_payload(payload: dict) -> ResilienceCurve:
    curve = ResilienceCurve(group=payload["group"], layer=payload["layer"],
                            baseline_accuracy=payload["baseline_accuracy"])
    curve.points = [ResiliencePoint(nm, na, accuracy, drop)
                    for nm, na, accuracy, drop in payload["points"]]
    return curve


@dataclass
class AnalysisResult:
    """Measured curves plus provenance; the unit the store persists.

    ``curves`` is keyed exactly like the Step 2/4 analysis results: by
    group name for group-wise targets, by ``(group, layer)`` otherwise —
    existing consumers index it unchanged.  ``from_cache`` is a runtime
    flag (excluded from equality) set by the store on a hit.
    """

    request: AnalysisRequest
    curves: dict
    baseline_accuracy: float
    model_fingerprint: str
    dataset_fingerprint: str
    created: float = 0.0
    elapsed_seconds: float = 0.0
    schema: int = SCHEMA_VERSION
    from_cache: bool = field(default=False, compare=False)

    def curve_for(self, group: str, layer: str | None = None
                  ) -> ResilienceCurve:
        """The measured curve of one target."""
        return self.curves[SweepTarget(group, layer).key]

    # -------------------------------------------------------- serialisation
    def to_payload(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "request": self.request.to_payload(),
            "curves": [_curve_to_payload(curve)
                       for curve in self.curves.values()],
            "baseline_accuracy": self.baseline_accuracy,
            "model_fingerprint": self.model_fingerprint,
            "dataset_fingerprint": self.dataset_fingerprint,
            "created": self.created,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "AnalysisResult":
        schema = payload.get("schema")
        if schema != SCHEMA_VERSION:
            raise SchemaError(f"unsupported result schema {schema!r} "
                              f"(supported: {SCHEMA_VERSION})")
        curves = {}
        for entry in payload["curves"]:
            curve = _curve_from_payload(entry)
            curves[SweepTarget(curve.group, curve.layer).key] = curve
        return cls(request=AnalysisRequest.from_payload(payload["request"]),
                   curves=curves,
                   baseline_accuracy=payload["baseline_accuracy"],
                   model_fingerprint=payload["model_fingerprint"],
                   dataset_fingerprint=payload["dataset_fingerprint"],
                   created=payload["created"],
                   elapsed_seconds=payload["elapsed_seconds"])

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "AnalysisResult":
        return cls.from_payload(json.loads(text))


@dataclass
class PartialResult:
    """Merged-so-far curves of a still-running request (module docstring).

    ``curves`` holds one (possibly point-incomplete) curve per target
    that has at least one completed shard; targets with nothing measured
    yet are absent.  ``complete`` flips exactly when every shard landed,
    at which point the curves carry every requested point and agree
    byte-for-byte with the job's final :class:`AnalysisResult`.
    """

    request: AnalysisRequest
    curves: dict
    shards_total: int
    shards_done: int
    baseline_accuracy: float | None = None
    complete: bool = False
    schema: int = SCHEMA_VERSION

    @classmethod
    def from_result(cls, result: AnalysisResult,
                    shards_total: int = 1) -> "PartialResult":
        """The trivial complete partial of an already-resolved result."""
        return cls(request=result.request, curves=dict(result.curves),
                   shards_total=shards_total, shards_done=shards_total,
                   baseline_accuracy=result.baseline_accuracy,
                   complete=True)

    def curve_for(self, group: str, layer: str | None = None
                  ) -> ResilienceCurve | None:
        """The merged-so-far curve of one target (``None`` if nothing of
        it has completed yet)."""
        return self.curves.get(SweepTarget(group, layer).key)

    def points_measured(self) -> int:
        """Total measured points across every target so far."""
        return sum(len(curve.points) for curve in self.curves.values())

    # -------------------------------------------------------- serialisation
    def to_payload(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "request": self.request.to_payload(),
            "curves": [_curve_to_payload(curve)
                       for curve in self.curves.values()],
            "shards_total": self.shards_total,
            "shards_done": self.shards_done,
            "baseline_accuracy": self.baseline_accuracy,
            "complete": self.complete,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "PartialResult":
        schema = payload.get("schema")
        if schema != SCHEMA_VERSION:
            raise SchemaError(f"unsupported partial-result schema "
                              f"{schema!r} (supported: {SCHEMA_VERSION})")
        curves = {}
        for entry in payload["curves"]:
            curve = _curve_from_payload(entry)
            curves[SweepTarget(curve.group, curve.layer).key] = curve
        return cls(request=AnalysisRequest.from_payload(payload["request"]),
                   curves=curves,
                   shards_total=payload["shards_total"],
                   shards_done=payload["shards_done"],
                   baseline_accuracy=payload["baseline_accuracy"],
                   complete=payload["complete"])

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PartialResult":
        return cls.from_payload(json.loads(text))
