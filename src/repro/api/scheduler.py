"""Shard planning and deterministic merging for large analysis requests.

A request with many targets (a Fig. 9 group sweep, a Fig. 10 layer
refinement) decomposes naturally: every noise stream the sweep engine
draws is derived statelessly per (seed, site, batch), and the clean
baseline is a deterministic function of (model, dataset, batch size) —
so measuring each target in its own sub-request produces *byte-identical*
curves to one union sweep.  The NM axis factors the same way: the
stacked injector's base draw is shared per (site, batch) across chunk
boundaries, and the exact tier derives one stream per (seed, site) point
independently, so splitting ``nm_values`` into chunks never changes the
noise any point receives.

:func:`plan_shards` turns one request into per-target (and optionally
NM-chunked) shard requests; :func:`merge_shards` reassembles their
results in the parent's target and NM order.  Shards are full
:class:`~repro.api.request.AnalysisRequest` objects, so they flow through
the service's normal pipeline — content-addressed store lookups and
in-flight deduplication work per shard, making the store the shared
dedup layer between overlapping requests.

:func:`merge_partial` is the progressive-results face of the same
determinism argument: because every shard is independently exact, the
subset of shards that has completed *so far* already carries final curve
points — merging them early (in plan order, gaps skipped) yields a
monotonically-growing snapshot whose final state is byte-identical to
:func:`merge_shards` over the full set.

:class:`ShardQueue` is where dispatch meets backpressure and fairness:
a bounded, multi-tenant dispatch queue between the service and its
execution backend.  At most ``backend.parallel`` shards are in flight;
the rest wait in per-tenant sub-heaps (keyed by the request's
``client_id``) drained by deficit-round-robin with configurable
per-tenant weights, are dropped on cancellation before they ever start,
and — when a ``limit`` is configured — new work is refused with
:class:`QueueFull` (HTTP 429 upstream) instead of queuing unboundedly.
When a ``starvation_threshold`` is configured the queue also *preempts*:
a tenant whose oldest queued shard has waited past the threshold while
the tenant runs nothing gets a slot freed by parking another tenant's
running shard at its next engine checkpoint (see
:class:`~repro.api.events.PreemptToken`).
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future

from ..core.resilience import ResilienceCurve
from ..core.sweep import SweepTarget
from .events import AnalysisCancelled, CancelToken
from .request import AnalysisRequest

__all__ = ["plan_shards", "merge_shards", "merge_curves", "merge_partial",
           "ShardMismatch", "ShardQueue", "QueueFull", "DEFAULT_TENANT"]


class ShardMismatch(RuntimeError):
    """Shard results disagree where determinism guarantees they cannot.

    Raised when merged shards report different baselines or an
    unexpected point count — a symptom of a non-deterministic engine or
    a poisoned store entry, never of a valid execution.
    """


def plan_shards(request: AnalysisRequest, targets: tuple[SweepTarget, ...],
                *, parallel: int, nm_chunk: int | None = None
                ) -> list[AnalysisRequest] | None:
    """Split ``request`` (already widened to ``targets``) into shards.

    Returns ``None`` when sharding buys nothing: a serial backend
    (``parallel <= 1``) with no NM chunking requested, or a request that
    would produce a single shard anyway.  Otherwise returns one
    sub-request per (target, NM chunk), in deterministic
    target-major/NM-minor order.
    """
    shard_targets: list[tuple[SweepTarget, ...]]
    if parallel > 1 and len(targets) > 1:
        shard_targets = [(target,) for target in targets]
    else:
        shard_targets = [tuple(targets)]
    nm_chunks: list[tuple[float, ...]]
    if nm_chunk is not None and nm_chunk >= 1 \
            and len(request.nm_values) > nm_chunk:
        nm_chunks = [request.nm_values[start:start + nm_chunk]
                     for start in range(0, len(request.nm_values), nm_chunk)]
    else:
        nm_chunks = [request.nm_values]
    if len(shard_targets) * len(nm_chunks) <= 1:
        return None
    return [dataclasses.replace(request, targets=shard, nm_values=chunk)
            for shard in shard_targets for chunk in nm_chunks]


def merge_curves(target: SweepTarget, chunks: list[ResilienceCurve]
                 ) -> ResilienceCurve:
    """Concatenate one target's NM-chunk curves in chunk order."""
    baselines = {curve.baseline_accuracy for curve in chunks}
    if len(baselines) != 1:
        raise ShardMismatch(
            f"shards of target {target} report different baselines "
            f"{sorted(baselines)}; the clean evaluation is deterministic, "
            f"so this indicates a stale store entry or mutated model")
    merged = ResilienceCurve(group=target.group, layer=target.layer,
                             baseline_accuracy=chunks[0].baseline_accuracy)
    for curve in chunks:
        merged.points.extend(curve.points)
    return merged


def merge_shards(request: AnalysisRequest,
                 targets: tuple[SweepTarget, ...],
                 shards: list[AnalysisRequest],
                 results: list) -> dict:
    """Reassemble shard results into the union request's curve dict.

    ``shards``/``results`` are parallel lists in :func:`plan_shards`
    order.  Returns curves keyed exactly like
    :meth:`~repro.core.sweep.SweepEngine.sweep` output (group name or
    ``(group, layer)``), with each curve's points in ``request.
    nm_values`` order — byte-identical to the unsharded execution.
    """
    per_target: dict = {target.key: [] for target in targets}
    for shard, result in zip(shards, results):
        for target in shard.targets:
            per_target[target.key].append(result.curves[target.key])
    expected_chunks = max(1, len(shards) // max(1, len(
        {t.key for shard in shards for t in shard.targets})))
    curves = {}
    for target in targets:
        chunks = per_target[target.key]
        merged = merge_curves(target, chunks)
        if len(merged.points) != len(request.nm_values):
            raise ShardMismatch(
                f"target {target} merged to {len(merged.points)} points, "
                f"expected {len(request.nm_values)} "
                f"({len(chunks)}/{expected_chunks} chunks present)")
        curves[target.key] = merged
    return curves


def merge_partial(request: AnalysisRequest,
                  shards: list[AnalysisRequest],
                  results: list) -> tuple[dict, int]:
    """Merged-so-far curves from the completed subset of ``shards``.

    ``results`` is parallel to ``shards`` (plan order) with ``None`` in
    the slots of shards that have not completed.  Only ``request``'s own
    targets are assembled (a batched group's union may be wider).
    Returns ``(curves, shards_done)``; curves concatenate completed
    chunks in plan order with missing chunks simply absent, so the point
    *set* grows monotonically as results land and — once every slot is
    filled — equals the :func:`merge_shards` output exactly (same chunk
    concatenation, same order).
    """
    wanted = {target.key: target for target in request.targets}
    per_target: dict = {key: [] for key in wanted}
    done = 0
    for shard, result in zip(shards, results):
        if result is None:
            continue
        done += 1
        for target in shard.targets:
            if target.key in per_target:
                per_target[target.key].append(result.curves[target.key])
    curves = {}
    for key, chunks in per_target.items():
        if chunks:
            curves[key] = merge_curves(wanted[key], chunks)
    return curves, done


class QueueFull(RuntimeError):
    """The service's dispatch queue is saturated; retry later.

    Raised by :meth:`ShardQueue.admit` (and therefore by
    ``ResilienceService.submit`` when a ``queue_limit`` is configured).
    ``retry_after`` is the server's backoff hint in seconds — the HTTP
    layer forwards it as a ``Retry-After`` header on the 429 response.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


#: Shards whose request carries no ``client_id`` are accounted under
#: this tenant name.
DEFAULT_TENANT = "default"


@dataclasses.dataclass(order=True)
class _QueueEntry:
    """One shard waiting for dispatch capacity (heap-ordered within its
    tenant's sub-queue)."""

    sort_key: tuple
    request: AnalysisRequest = dataclasses.field(compare=False)
    runner: object = dataclasses.field(compare=False)
    proxy: Future = dataclasses.field(compare=False)
    cancel: CancelToken | None = dataclasses.field(compare=False)
    on_start: object = dataclasses.field(compare=False)
    tenant: str = dataclasses.field(compare=False, default=DEFAULT_TENANT)
    preempt: object | None = dataclasses.field(compare=False, default=None)
    enqueued_at: float = dataclasses.field(compare=False, default=0.0)
    started_at: float = dataclasses.field(compare=False, default=0.0)

    @property
    def priority(self) -> int:
        return -self.sort_key[0]


class _TenantState:
    """One tenant's sub-queue book-keeping (guarded by the queue lock)."""

    __slots__ = ("name", "weight", "deficit", "heap", "completed",
                 "preempted")

    def __init__(self, name: str, weight: float):
        self.name = name
        self.weight = float(weight)
        self.deficit = 0.0
        self.heap: list[_QueueEntry] = []
        self.completed = 0
        self.preempted = 0


class _Admission:
    """One atomic admission reservation (see :meth:`ShardQueue.admit`).

    Holds ``amount`` virtual queue slots against the limit until
    :meth:`release` (idempotent) returns them — which the service does
    once the submission's shards are actually enqueued (or the
    submission failed), closing the check-then-enqueue race window.
    """

    def __init__(self, queue: "ShardQueue", amount: int):
        self._queue = queue
        self._amount = amount

    def release(self) -> None:
        amount, self._amount = self._amount, 0
        if amount:
            with self._queue._lock:
                self._queue._reserved -= amount

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class ShardQueue:
    """Bounded, multi-tenant dispatch queue in front of one backend.

    Every shard the service dispatches flows through :meth:`submit`: at
    most ``backend.parallel`` are handed to the backend at a time, the
    remainder wait in per-tenant sub-heaps (max-priority /
    FIFO-within-priority *inside* a tenant) drained by
    **deficit-round-robin**: tenants with queued work rotate, each visit
    refills the tenant's deficit by its weight (default 1.0) and each
    dispatched shard costs one unit, so sustained throughput divides
    proportionally to weights while a weight below 1 still accrues
    service across rounds.  A single tenant degenerates to one heap
    drained in pure heap order — byte-identical to the pre-tenant queue.
    This buys four things the bare backends cannot give:

    * **fairness** — one tenant's fig10-scale fan-out no longer starves
      everyone else's single-target requests;
    * **priority** — a high-priority submission overtakes its tenant's
      queued (never running) work, regardless of arrival order;
    * **cancellation before start** — a queued shard whose
      :class:`~repro.api.events.CancelToken` is set resolves
      :class:`~repro.api.events.AnalysisCancelled` without ever touching
      the backend (and :meth:`drop_cancelled` sweeps them out eagerly);
    * **backpressure** — with a ``limit``, :meth:`admit` refuses new
      work loudly (:class:`QueueFull` with a backoff hint) instead of
      queuing unboundedly, and its reservation makes the verdict atomic
      per submission group.

    With a ``starvation_threshold`` (seconds) the queue additionally
    runs a monitor thread that parks one running shard — via its
    :class:`~repro.api.events.PreemptToken` — whenever some tenant's
    oldest queued shard outwaits the threshold with nothing of its own
    running (see :meth:`preempt_starved`).

    The queue adds no concurrency of its own: an ``inline`` backend
    drains it synchronously (capacity 1, dispatch blocks), the parallel
    backends drain it from their completion callbacks.

    **Lock ordering** (checked by ``repro lint`` and the runtime lock
    witness — see ``docs/devtools.md``): ``_lock`` is a *leaf* lock.
    Every method takes it for short critical sections over the
    tenant/heap/running bookkeeping and **releases it before calling
    out** — into the backend, a proxy future's callbacks, a
    :class:`~repro.api.events.PreemptToken` (its own leaf lock), or
    :meth:`_pump` re-entry.  In particular :meth:`preempt_starved`
    computes its victim under ``_lock`` but fires ``preempt.set()``
    after dropping it, and :meth:`_dispatch`'s completion callback
    resolves the proxy outside its bookkeeping section.  Nothing in
    this module may acquire another lock while holding ``_lock``; new
    code that needs to must take the other lock first (and will be
    flagged as a ``lock-order-cycle`` if two call paths disagree).
    """

    def __init__(self, backend, limit: int | None = None, *,
                 weights: dict | None = None,
                 starvation_threshold: float | None = None):
        if limit is not None and limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {limit}")
        if starvation_threshold is not None and starvation_threshold <= 0:
            raise ValueError(f"starvation_threshold must be positive "
                             f"(seconds) or None, got {starvation_threshold}")
        self.backend = backend
        self.limit = limit
        self.starvation_threshold = starvation_threshold
        self._weights: dict[str, float] = {}
        for name, weight in (weights or {}).items():
            self._check_weight(name, weight)
            self._weights[name] = float(weight)
        self._tenants: dict[str, _TenantState] = {}
        self._rotation: deque[str] = deque()
        self._ticket = itertools.count()
        self._running = 0
        self._running_entries: list[_QueueEntry] = []
        self._reserved = 0
        self._avg_seconds = 0.0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None
        if starvation_threshold is not None:
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="repro-fair-scheduler",
                daemon=True)
            self._monitor.start()

    @property
    def capacity(self) -> int:
        return max(1, int(self.backend.parallel))

    @staticmethod
    def _check_weight(name, weight) -> None:
        if not isinstance(name, str) or not name:
            raise ValueError(f"tenant name must be a non-empty string, "
                             f"got {name!r}")
        if not isinstance(weight, (int, float)) or not weight > 0:
            raise ValueError(f"tenant weight must be a positive number, "
                             f"got {weight!r} for tenant {name!r}")

    def set_weight(self, name: str, weight: float) -> None:
        """Configure one tenant's round-robin weight (default 1.0)."""
        self._check_weight(name, weight)
        with self._lock:
            self._weights[name] = float(weight)
            state = self._tenants.get(name)
            if state is not None:
                state.weight = float(weight)

    def close(self) -> None:
        """Stop the starvation monitor thread (idempotent)."""
        self._stop.set()

    def snapshot(self) -> dict:
        """Observable queue state (the ``/v1/health`` payload).

        ``worker_restarts`` is the backend's cumulative crashed/killed
        worker replacement count (0 for backends without a pool);
        ``tenants`` breaks queued/running/completed/preempted counts
        down per tenant; ``pool`` is the elastic procpool's size
        snapshot when the backend exposes one.
        """
        restarts = int(getattr(self.backend, "worker_restarts", 0) or 0)
        pool_snapshot = getattr(self.backend, "pool_snapshot", None)
        pool = pool_snapshot() if callable(pool_snapshot) else None
        with self._lock:
            queued = self._queued_locked()
            running_by: dict[str, int] = {}
            for entry in self._running_entries:
                running_by[entry.tenant] = running_by.get(entry.tenant, 0) + 1
            tenants = {
                name: {"queued": len(state.heap),
                       "running": running_by.get(name, 0),
                       "completed": state.completed,
                       "preempted": state.preempted,
                       "weight": state.weight}
                for name, state in sorted(self._tenants.items())}
            result = {"queued": queued, "running": self._running,
                      "capacity": self.capacity, "limit": self.limit,
                      "saturated": (self.limit is not None
                                    and queued >= self.limit),
                      "worker_restarts": restarts,
                      "tenants": tenants}
        if pool is not None:
            result["pool"] = pool
        return result

    def admit(self, incoming: int = 1) -> _Admission:
        """Atomically decide admission and reserve the group's slots.

        Admission is **accept-bounded**: a submission is refused exactly
        when the queue already holds ``limit`` or more waiting shards
        (counting other submissions' still-held reservations).  An
        *admitted* submission may transiently push the backlog past the
        limit with its own fan-out (a 36-shard fig10 request against
        ``limit=4`` must remain runnable — refusing it would make large
        requests permanently unservable), and an idle queue admits any
        batch size; what the limit guarantees is that a saturated
        service stops taking on new submissions until the backlog
        drains.  The verdict and the ``incoming``-sized reservation are
        one atomic step, so N concurrent submitters at ``queued ==
        limit - 1`` cannot all slip through the gap between check and
        enqueue; the caller releases the returned :class:`_Admission`
        once its shards are actually queued.

        The backoff hint scales with how much work sits ahead: queued
        depth × the EMA of recent *successful* shard durations (floor),
        so a saturated queue of slow sweeps tells clients to come back
        later than one of fast ones.
        """
        amount = max(1, int(incoming))
        if self.limit is None:
            return _Admission(self, 0)
        with self._lock:
            queued = self._queued_locked() + self._reserved
            if queued < self.limit:
                self._reserved += amount
                return _Admission(self, amount)
            retry_after = max(1.0, queued * max(self._avg_seconds, 0.1)
                              / self.capacity)
        raise QueueFull(
            f"dispatch queue is full ({queued} queued, limit "
            f"{self.limit}); retry in ~{retry_after:.0f}s",
            retry_after=retry_after)

    def submit(self, request: AnalysisRequest, runner, *,
               priority: int = 0, cancel: CancelToken | None = None,
               on_start=None, preempt=None) -> Future:
        """Enqueue one shard; returns a future of its result.

        ``runner`` and ``on_start`` are forwarded to the backend when the
        shard reaches the front; a set ``cancel`` token resolves the
        future with :class:`~repro.api.events.AnalysisCancelled` instead
        (checked both at dispatch time and, via the wrapped runner, at
        measurement start — so even backend-pool queues drop promptly).
        ``preempt`` is the shard attempt's
        :class:`~repro.api.events.PreemptToken`: it registers the shard
        as a preemption victim candidate and is forwarded to backends
        advertising ``supports_preempt`` so an out-of-process set can
        kill the worker.  The tenant is the request's
        ``options.client_id`` (:data:`DEFAULT_TENANT` when absent).
        """
        proxy: Future = Future()
        tenant = (getattr(getattr(request, "options", None),
                          "client_id", None) or DEFAULT_TENANT)
        entry = _QueueEntry(sort_key=(-int(priority), next(self._ticket)),
                            request=request, runner=runner, proxy=proxy,
                            cancel=cancel, on_start=on_start, tenant=tenant,
                            preempt=preempt, enqueued_at=time.monotonic())
        with self._lock:
            state = self._tenant_state(tenant)
            heapq.heappush(state.heap, entry)
            if tenant not in self._rotation:
                self._rotation.append(tenant)
        self._pump()
        return proxy

    def drop_cancelled(self) -> int:
        """Eagerly resolve queued entries whose cancel token is set.

        The pump would drop them anyway when capacity frees; this makes
        ``handle.cancel()`` observable immediately.  Returns the count.
        """
        dropped: list[_QueueEntry] = []
        with self._lock:
            for name, state in self._tenants.items():
                doomed = [entry for entry in state.heap
                          if entry.cancel is not None
                          and entry.cancel.is_set()]
                if not doomed:
                    continue
                state.heap = [entry for entry in state.heap
                              if entry not in doomed]
                heapq.heapify(state.heap)
                dropped.extend(doomed)
                if not state.heap and name in self._rotation:
                    self._rotation.remove(name)
                    state.deficit = 0.0
        for entry in dropped:
            self._resolve_cancelled(entry)
        return len(dropped)

    # ---------------------------------------------------------- preemption
    def preempt_starved(self, now: float | None = None) -> dict | None:
        """Park one running shard for the longest-starved tenant.

        A tenant is *starved* when it has queued work, nothing running,
        and its oldest queued shard has waited longer than
        ``starvation_threshold`` — which can only persist while other
        tenants hold every capacity slot.  The victim is another
        tenant's running shard carrying an unset
        :class:`~repro.api.events.PreemptToken` with priority no higher
        than the starved shard's: lowest priority first, most recently
        started breaking ties (it has the least progress to park).
        Setting the token asks the measurement to park at its next
        checkpoint; the service persists the measured-so-far points and
        requeues a remainder shard, so nothing is re-measured and the
        final merge stays byte-identical.

        One victim per call (the monitor re-fires if starvation
        persists).  Returns an info dict describing the preemption, or
        ``None`` when nothing is starved or no victim qualifies.
        Public so tests can drive it deterministically.
        """
        threshold = self.starvation_threshold
        if threshold is None:
            return None
        if now is None:
            now = time.monotonic()
        with self._lock:
            if self._running < self.capacity:
                return None  # free capacity: the pump serves everyone
            running_by: dict[str, int] = {}
            for entry in self._running_entries:
                running_by[entry.tenant] = running_by.get(entry.tenant, 0) + 1
            starved_name = starved_head = None
            waited = 0.0
            for name, state in self._tenants.items():
                if not state.heap or running_by.get(name, 0):
                    continue
                head = min(state.heap, key=lambda e: e.enqueued_at)
                wait = now - head.enqueued_at
                if wait > threshold and wait > waited:
                    starved_name, starved_head, waited = name, head, wait
            if starved_head is None:
                return None
            victims = [entry for entry in self._running_entries
                       if entry.tenant != starved_name
                       and entry.preempt is not None
                       and not entry.preempt.is_set()
                       and entry.priority <= starved_head.priority]
            if not victims:
                return None
            victim = min(victims,
                         key=lambda entry: (entry.priority,
                                            -entry.started_at))
            state = self._tenants.get(victim.tenant)
            if state is not None:
                state.preempted += 1
            job = victim.request.fingerprint()
            reason = (f"tenant {starved_name!r} starved for {waited:.1f}s "
                      f"(threshold {threshold:.1f}s); parking tenant "
                      f"{victim.tenant!r}'s shard {job} at its next "
                      f"checkpoint")
        victim.preempt.set(reason)
        return {"starved": starved_name, "victim": victim.tenant,
                "job": job, "waited": waited, "reason": reason}

    def _monitor_loop(self) -> None:
        interval = max(0.05, (self.starvation_threshold or 1.0) / 4.0)
        while not self._stop.wait(interval):
            try:
                self.preempt_starved()
            # lint: allow(exc-swallowed): the monitor thread must outlive arbitrary callback failures; a real starvation recurs next tick
            except Exception:  # noqa: BLE001 — the monitor must survive
                pass

    # ----------------------------------------------------------- internals
    def _tenant_state(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = _TenantState(name, self._weights.get(name, 1.0))
            self._tenants[name] = state
        return state

    def _queued_locked(self) -> int:
        return sum(len(state.heap) for state in self._tenants.values())

    def _pop_entry_locked(self) -> _QueueEntry | None:
        """Deficit-round-robin pop across tenant sub-heaps.

        The head tenant of the rotation refills its deficit by its
        weight once per visit (only when below one unit, so unserved
        credit never hoards unboundedly) and pays one unit per
        dispatched shard; a tenant whose deficit still falls short
        rotates to the tail and accrues across rounds, which is what
        makes fractional weights mean "one shard every 1/weight
        rounds".  Drained tenants leave the rotation with their deficit
        reset — re-arrival starts fresh, so idle time never banks
        credit.  With one tenant this reduces to a plain heap pop.
        """
        while self._rotation:
            name = self._rotation[0]
            state = self._tenants[name]
            if not state.heap:
                self._rotation.popleft()
                state.deficit = 0.0
                continue
            if state.deficit < 1.0:
                state.deficit += state.weight
            if state.deficit < 1.0:
                self._rotation.rotate(-1)
                continue
            state.deficit -= 1.0
            entry = heapq.heappop(state.heap)
            if not state.heap:
                self._rotation.popleft()
                state.deficit = 0.0
            elif state.deficit < 1.0:
                self._rotation.rotate(-1)
            return entry
        return None

    @staticmethod
    def _resolve_cancelled(entry: _QueueEntry) -> None:
        if not entry.proxy.done():
            entry.proxy.set_exception(AnalysisCancelled(
                f"request {entry.request.fingerprint()} cancelled before "
                f"its shard started"))

    def _pump(self) -> None:
        """Dispatch queued entries while capacity allows (thread-safe)."""
        while True:
            with self._lock:
                if self._running >= self.capacity:
                    return
                entry = self._pop_entry_locked()
                if entry is None:
                    return
                cancelled = (entry.cancel is not None
                             and entry.cancel.is_set())
                if not cancelled:
                    self._running += 1
                    entry.started_at = time.monotonic()
                    self._running_entries.append(entry)
            if cancelled:
                self._resolve_cancelled(entry)
                continue
            self._dispatch(entry)

    def _dispatch(self, entry: _QueueEntry) -> None:
        started = time.monotonic()

        def guarded(request):
            # Late cancellation check: the shard may have sat in a
            # backend pool queue after leaving this heap.
            if entry.cancel is not None and entry.cancel.is_set():
                raise AnalysisCancelled(
                    f"request {request.fingerprint()} cancelled before "
                    f"measurement started")
            return entry.runner(request)

        def release(inner: Future) -> None:
            elapsed = time.monotonic() - started
            error = inner.exception()
            with self._lock:
                self._running -= 1
                if entry in self._running_entries:
                    self._running_entries.remove(entry)
                if error is None:
                    # Only successful completions feed the backpressure
                    # EMA: a burst of fast failures (chaos crashes,
                    # preemption kills) says nothing about how long a
                    # measurement takes, and folding them in collapses
                    # the Retry-After hint.
                    self._avg_seconds = (elapsed if self._avg_seconds == 0.0
                                         else 0.7 * self._avg_seconds
                                         + 0.3 * elapsed)
                    state = self._tenants.get(entry.tenant)
                    if state is not None:
                        state.completed += 1
            if error is not None:
                entry.proxy.set_exception(error)
            else:
                entry.proxy.set_result(inner.result())
            self._pump()

        kwargs: dict = {"on_start": entry.on_start}
        if entry.preempt is not None and getattr(self.backend,
                                                 "supports_preempt", False):
            kwargs["preempt"] = entry.preempt
        try:
            inner = self.backend.submit(entry.request, guarded, **kwargs)
        except BaseException as exc:  # noqa: BLE001 — delivered via the proxy
            with self._lock:
                self._running -= 1
                if entry in self._running_entries:
                    self._running_entries.remove(entry)
            entry.proxy.set_exception(exc)
            self._pump()
            return
        inner.add_done_callback(release)
