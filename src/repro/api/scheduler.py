"""Shard planning and deterministic merging for large analysis requests.

A request with many targets (a Fig. 9 group sweep, a Fig. 10 layer
refinement) decomposes naturally: every noise stream the sweep engine
draws is derived statelessly per (seed, site, batch), and the clean
baseline is a deterministic function of (model, dataset, batch size) —
so measuring each target in its own sub-request produces *byte-identical*
curves to one union sweep.  The NM axis factors the same way: the
stacked injector's base draw is shared per (site, batch) across chunk
boundaries, and the exact tier derives one stream per (seed, site) point
independently, so splitting ``nm_values`` into chunks never changes the
noise any point receives.

:func:`plan_shards` turns one request into per-target (and optionally
NM-chunked) shard requests; :func:`merge_shards` reassembles their
results in the parent's target and NM order.  Shards are full
:class:`~repro.api.request.AnalysisRequest` objects, so they flow through
the service's normal pipeline — content-addressed store lookups and
in-flight deduplication work per shard, making the store the shared
dedup layer between overlapping requests.

:func:`merge_partial` is the progressive-results face of the same
determinism argument: because every shard is independently exact, the
subset of shards that has completed *so far* already carries final curve
points — merging them early (in plan order, gaps skipped) yields a
monotonically-growing snapshot whose final state is byte-identical to
:func:`merge_shards` over the full set.

:class:`ShardQueue` is where dispatch meets backpressure: a bounded
priority queue between the service and its execution backend.  At most
``backend.parallel`` shards are in flight; the rest wait in a heap
ordered by (priority desc, arrival), are dropped on cancellation before
they ever start, and — when a ``limit`` is configured — new work is
refused with :class:`QueueFull` (HTTP 429 upstream) instead of queuing
unboundedly.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import threading
import time
from concurrent.futures import Future

from ..core.resilience import ResilienceCurve
from ..core.sweep import SweepTarget
from .events import AnalysisCancelled, CancelToken
from .request import AnalysisRequest

__all__ = ["plan_shards", "merge_shards", "merge_curves", "merge_partial",
           "ShardMismatch", "ShardQueue", "QueueFull"]


class ShardMismatch(RuntimeError):
    """Shard results disagree where determinism guarantees they cannot.

    Raised when merged shards report different baselines or an
    unexpected point count — a symptom of a non-deterministic engine or
    a poisoned store entry, never of a valid execution.
    """


def plan_shards(request: AnalysisRequest, targets: tuple[SweepTarget, ...],
                *, parallel: int, nm_chunk: int | None = None
                ) -> list[AnalysisRequest] | None:
    """Split ``request`` (already widened to ``targets``) into shards.

    Returns ``None`` when sharding buys nothing: a serial backend
    (``parallel <= 1``) with no NM chunking requested, or a request that
    would produce a single shard anyway.  Otherwise returns one
    sub-request per (target, NM chunk), in deterministic
    target-major/NM-minor order.
    """
    shard_targets: list[tuple[SweepTarget, ...]]
    if parallel > 1 and len(targets) > 1:
        shard_targets = [(target,) for target in targets]
    else:
        shard_targets = [tuple(targets)]
    nm_chunks: list[tuple[float, ...]]
    if nm_chunk is not None and nm_chunk >= 1 \
            and len(request.nm_values) > nm_chunk:
        nm_chunks = [request.nm_values[start:start + nm_chunk]
                     for start in range(0, len(request.nm_values), nm_chunk)]
    else:
        nm_chunks = [request.nm_values]
    if len(shard_targets) * len(nm_chunks) <= 1:
        return None
    return [dataclasses.replace(request, targets=shard, nm_values=chunk)
            for shard in shard_targets for chunk in nm_chunks]


def merge_curves(target: SweepTarget, chunks: list[ResilienceCurve]
                 ) -> ResilienceCurve:
    """Concatenate one target's NM-chunk curves in chunk order."""
    baselines = {curve.baseline_accuracy for curve in chunks}
    if len(baselines) != 1:
        raise ShardMismatch(
            f"shards of target {target} report different baselines "
            f"{sorted(baselines)}; the clean evaluation is deterministic, "
            f"so this indicates a stale store entry or mutated model")
    merged = ResilienceCurve(group=target.group, layer=target.layer,
                             baseline_accuracy=chunks[0].baseline_accuracy)
    for curve in chunks:
        merged.points.extend(curve.points)
    return merged


def merge_shards(request: AnalysisRequest,
                 targets: tuple[SweepTarget, ...],
                 shards: list[AnalysisRequest],
                 results: list) -> dict:
    """Reassemble shard results into the union request's curve dict.

    ``shards``/``results`` are parallel lists in :func:`plan_shards`
    order.  Returns curves keyed exactly like
    :meth:`~repro.core.sweep.SweepEngine.sweep` output (group name or
    ``(group, layer)``), with each curve's points in ``request.
    nm_values`` order — byte-identical to the unsharded execution.
    """
    per_target: dict = {target.key: [] for target in targets}
    for shard, result in zip(shards, results):
        for target in shard.targets:
            per_target[target.key].append(result.curves[target.key])
    expected_chunks = max(1, len(shards) // max(1, len(
        {t.key for shard in shards for t in shard.targets})))
    curves = {}
    for target in targets:
        chunks = per_target[target.key]
        merged = merge_curves(target, chunks)
        if len(merged.points) != len(request.nm_values):
            raise ShardMismatch(
                f"target {target} merged to {len(merged.points)} points, "
                f"expected {len(request.nm_values)} "
                f"({len(chunks)}/{expected_chunks} chunks present)")
        curves[target.key] = merged
    return curves


def merge_partial(request: AnalysisRequest,
                  shards: list[AnalysisRequest],
                  results: list) -> tuple[dict, int]:
    """Merged-so-far curves from the completed subset of ``shards``.

    ``results`` is parallel to ``shards`` (plan order) with ``None`` in
    the slots of shards that have not completed.  Only ``request``'s own
    targets are assembled (a batched group's union may be wider).
    Returns ``(curves, shards_done)``; curves concatenate completed
    chunks in plan order with missing chunks simply absent, so the point
    *set* grows monotonically as results land and — once every slot is
    filled — equals the :func:`merge_shards` output exactly (same chunk
    concatenation, same order).
    """
    wanted = {target.key: target for target in request.targets}
    per_target: dict = {key: [] for key in wanted}
    done = 0
    for shard, result in zip(shards, results):
        if result is None:
            continue
        done += 1
        for target in shard.targets:
            if target.key in per_target:
                per_target[target.key].append(result.curves[target.key])
    curves = {}
    for key, chunks in per_target.items():
        if chunks:
            curves[key] = merge_curves(wanted[key], chunks)
    return curves, done


class QueueFull(RuntimeError):
    """The service's dispatch queue is saturated; retry later.

    Raised by :meth:`ShardQueue.check_admission` (and therefore by
    ``ResilienceService.submit`` when a ``queue_limit`` is configured).
    ``retry_after`` is the server's backoff hint in seconds — the HTTP
    layer forwards it as a ``Retry-After`` header on the 429 response.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


@dataclasses.dataclass(order=True)
class _QueueEntry:
    """One shard waiting for dispatch capacity (heap-ordered)."""

    sort_key: tuple
    request: AnalysisRequest = dataclasses.field(compare=False)
    runner: object = dataclasses.field(compare=False)
    proxy: Future = dataclasses.field(compare=False)
    cancel: CancelToken | None = dataclasses.field(compare=False)
    on_start: object = dataclasses.field(compare=False)


class ShardQueue:
    """Bounded priority dispatch queue in front of one execution backend.

    Every shard the service dispatches flows through :meth:`submit`: at
    most ``backend.parallel`` are handed to the backend at a time, the
    remainder wait in a max-priority / FIFO-within-priority heap.  This
    buys three things the bare backends cannot give:

    * **priority** — a high-priority submission overtakes queued (never
      running) work, regardless of arrival order;
    * **cancellation before start** — a queued shard whose
      :class:`~repro.api.events.CancelToken` is set resolves
      :class:`~repro.api.events.AnalysisCancelled` without ever touching
      the backend (and :meth:`drop_cancelled` sweeps them out eagerly);
    * **backpressure** — with a ``limit``, :meth:`check_admission`
      refuses new work loudly (:class:`QueueFull` with a backoff hint)
      instead of queuing unboundedly.

    The queue adds no concurrency of its own: an ``inline`` backend
    drains it synchronously (capacity 1, dispatch blocks), the parallel
    backends drain it from their completion callbacks.
    """

    def __init__(self, backend, limit: int | None = None):
        if limit is not None and limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {limit}")
        self.backend = backend
        self.limit = limit
        self._heap: list[_QueueEntry] = []
        self._ticket = itertools.count()
        self._running = 0
        self._avg_seconds = 0.0
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        return max(1, int(self.backend.parallel))

    def snapshot(self) -> dict:
        """Observable queue state (the ``/v1/health`` payload).

        ``worker_restarts`` is the backend's cumulative crashed/killed
        worker replacement count (0 for backends without a pool).
        """
        restarts = int(getattr(self.backend, "worker_restarts", 0) or 0)
        with self._lock:
            queued = len(self._heap)
            return {"queued": queued, "running": self._running,
                    "capacity": self.capacity, "limit": self.limit,
                    "saturated": (self.limit is not None
                                  and queued >= self.limit),
                    "worker_restarts": restarts}

    def check_admission(self, incoming: int = 1) -> None:
        """Refuse new work while the existing backlog is saturated.

        Admission is **accept-bounded**: a submission is refused exactly
        when the queue already holds ``limit`` or more waiting shards.
        An *admitted* submission may transiently push the backlog past
        the limit with its own fan-out (a 36-shard fig10 request against
        ``limit=4`` must remain runnable — refusing it would make large
        requests permanently unservable), and an idle queue admits any
        batch size; what the limit guarantees is that a saturated
        service stops taking on new submissions until the backlog
        drains.  ``incoming`` is accepted for signature stability but
        does not change the verdict.

        The backoff hint scales with how much work sits ahead: queued
        depth × the EMA of recent shard durations (floor), so a
        saturated queue of slow sweeps tells clients to come back later
        than one of fast ones.
        """
        del incoming  # saturation is about the existing backlog
        if self.limit is None:
            return
        with self._lock:
            queued = len(self._heap)
            if queued < self.limit:
                return
            retry_after = max(1.0, queued * max(self._avg_seconds, 0.1)
                              / self.capacity)
        raise QueueFull(
            f"dispatch queue is full ({queued} queued, limit "
            f"{self.limit}); retry in ~{retry_after:.0f}s",
            retry_after=retry_after)

    def submit(self, request: AnalysisRequest, runner, *,
               priority: int = 0, cancel: CancelToken | None = None,
               on_start=None) -> Future:
        """Enqueue one shard; returns a future of its result.

        ``runner`` and ``on_start`` are forwarded to the backend when the
        shard reaches the front; a set ``cancel`` token resolves the
        future with :class:`~repro.api.events.AnalysisCancelled` instead
        (checked both at dispatch time and, via the wrapped runner, at
        measurement start — so even backend-pool queues drop promptly).
        """
        proxy: Future = Future()
        entry = _QueueEntry(sort_key=(-int(priority), next(self._ticket)),
                            request=request, runner=runner, proxy=proxy,
                            cancel=cancel, on_start=on_start)
        with self._lock:
            heapq.heappush(self._heap, entry)
        self._pump()
        return proxy

    def drop_cancelled(self) -> int:
        """Eagerly resolve queued entries whose cancel token is set.

        The pump would drop them anyway when capacity frees; this makes
        ``handle.cancel()`` observable immediately.  Returns the count.
        """
        with self._lock:
            dropped = [entry for entry in self._heap
                       if entry.cancel is not None and entry.cancel.is_set()]
            if dropped:
                kept = [entry for entry in self._heap
                        if entry not in dropped]
                heapq.heapify(kept)
                self._heap = kept
        for entry in dropped:
            self._resolve_cancelled(entry)
        return len(dropped)

    # ----------------------------------------------------------- internals
    @staticmethod
    def _resolve_cancelled(entry: _QueueEntry) -> None:
        if not entry.proxy.done():
            entry.proxy.set_exception(AnalysisCancelled(
                f"request {entry.request.fingerprint()} cancelled before "
                f"its shard started"))

    def _pump(self) -> None:
        """Dispatch queued entries while capacity allows (thread-safe)."""
        while True:
            with self._lock:
                if self._running >= self.capacity or not self._heap:
                    return
                entry = heapq.heappop(self._heap)
                cancelled = (entry.cancel is not None
                             and entry.cancel.is_set())
                if not cancelled:
                    self._running += 1
            if cancelled:
                self._resolve_cancelled(entry)
                continue
            self._dispatch(entry)

    def _dispatch(self, entry: _QueueEntry) -> None:
        started = time.monotonic()

        def guarded(request):
            # Late cancellation check: the shard may have sat in a
            # backend pool queue after leaving this heap.
            if entry.cancel is not None and entry.cancel.is_set():
                raise AnalysisCancelled(
                    f"request {request.fingerprint()} cancelled before "
                    f"measurement started")
            return entry.runner(request)

        def release(inner: Future) -> None:
            elapsed = time.monotonic() - started
            with self._lock:
                self._running -= 1
                self._avg_seconds = (elapsed if self._avg_seconds == 0.0
                                     else 0.7 * self._avg_seconds
                                     + 0.3 * elapsed)
            error = inner.exception()
            if error is not None:
                entry.proxy.set_exception(error)
            else:
                entry.proxy.set_result(inner.result())
            self._pump()

        try:
            inner = self.backend.submit(entry.request, guarded,
                                        on_start=entry.on_start)
        except BaseException as exc:  # noqa: BLE001 — delivered via the proxy
            with self._lock:
                self._running -= 1
            entry.proxy.set_exception(exc)
            self._pump()
            return
        inner.add_done_callback(release)
