"""Shard planning and deterministic merging for large analysis requests.

A request with many targets (a Fig. 9 group sweep, a Fig. 10 layer
refinement) decomposes naturally: every noise stream the sweep engine
draws is derived statelessly per (seed, site, batch), and the clean
baseline is a deterministic function of (model, dataset, batch size) —
so measuring each target in its own sub-request produces *byte-identical*
curves to one union sweep.  The NM axis factors the same way: the
stacked injector's base draw is shared per (site, batch) across chunk
boundaries, and the exact tier derives one stream per (seed, site) point
independently, so splitting ``nm_values`` into chunks never changes the
noise any point receives.

:func:`plan_shards` turns one request into per-target (and optionally
NM-chunked) shard requests; :func:`merge_shards` reassembles their
results in the parent's target and NM order.  Shards are full
:class:`~repro.api.request.AnalysisRequest` objects, so they flow through
the service's normal pipeline — content-addressed store lookups and
in-flight deduplication work per shard, making the store the shared
dedup layer between overlapping requests.
"""

from __future__ import annotations

import dataclasses

from ..core.resilience import ResilienceCurve
from ..core.sweep import SweepTarget
from .request import AnalysisRequest

__all__ = ["plan_shards", "merge_shards", "merge_curves", "ShardMismatch"]


class ShardMismatch(RuntimeError):
    """Shard results disagree where determinism guarantees they cannot.

    Raised when merged shards report different baselines or an
    unexpected point count — a symptom of a non-deterministic engine or
    a poisoned store entry, never of a valid execution.
    """


def plan_shards(request: AnalysisRequest, targets: tuple[SweepTarget, ...],
                *, parallel: int, nm_chunk: int | None = None
                ) -> list[AnalysisRequest] | None:
    """Split ``request`` (already widened to ``targets``) into shards.

    Returns ``None`` when sharding buys nothing: a serial backend
    (``parallel <= 1``) with no NM chunking requested, or a request that
    would produce a single shard anyway.  Otherwise returns one
    sub-request per (target, NM chunk), in deterministic
    target-major/NM-minor order.
    """
    shard_targets: list[tuple[SweepTarget, ...]]
    if parallel > 1 and len(targets) > 1:
        shard_targets = [(target,) for target in targets]
    else:
        shard_targets = [tuple(targets)]
    nm_chunks: list[tuple[float, ...]]
    if nm_chunk is not None and nm_chunk >= 1 \
            and len(request.nm_values) > nm_chunk:
        nm_chunks = [request.nm_values[start:start + nm_chunk]
                     for start in range(0, len(request.nm_values), nm_chunk)]
    else:
        nm_chunks = [request.nm_values]
    if len(shard_targets) * len(nm_chunks) <= 1:
        return None
    return [dataclasses.replace(request, targets=shard, nm_values=chunk)
            for shard in shard_targets for chunk in nm_chunks]


def merge_curves(target: SweepTarget, chunks: list[ResilienceCurve]
                 ) -> ResilienceCurve:
    """Concatenate one target's NM-chunk curves in chunk order."""
    baselines = {curve.baseline_accuracy for curve in chunks}
    if len(baselines) != 1:
        raise ShardMismatch(
            f"shards of target {target} report different baselines "
            f"{sorted(baselines)}; the clean evaluation is deterministic, "
            f"so this indicates a stale store entry or mutated model")
    merged = ResilienceCurve(group=target.group, layer=target.layer,
                             baseline_accuracy=chunks[0].baseline_accuracy)
    for curve in chunks:
        merged.points.extend(curve.points)
    return merged


def merge_shards(request: AnalysisRequest,
                 targets: tuple[SweepTarget, ...],
                 shards: list[AnalysisRequest],
                 results: list) -> dict:
    """Reassemble shard results into the union request's curve dict.

    ``shards``/``results`` are parallel lists in :func:`plan_shards`
    order.  Returns curves keyed exactly like
    :meth:`~repro.core.sweep.SweepEngine.sweep` output (group name or
    ``(group, layer)``), with each curve's points in ``request.
    nm_values`` order — byte-identical to the unsharded execution.
    """
    per_target: dict = {target.key: [] for target in targets}
    for shard, result in zip(shards, results):
        for target in shard.targets:
            per_target[target.key].append(result.curves[target.key])
    expected_chunks = max(1, len(shards) // max(1, len(
        {t.key for shard in shards for t in shard.targets})))
    curves = {}
    for target in targets:
        chunks = per_target[target.key]
        merged = merge_curves(target, chunks)
        if len(merged.points) != len(request.nm_values):
            raise ShardMismatch(
                f"target {target} merged to {len(merged.points)} points, "
                f"expected {len(request.nm_values)} "
                f"({len(chunks)}/{expected_chunks} chunks present)")
        curves[target.key] = merged
    return curves
