"""Fault tolerance for the execution tier: retries, supervision, chaos.

ReD-CaNe's premise is systematic resilience analysis under injected
errors — this module gives the *service that runs those analyses* the
same treatment.  Failures are first-class, testable events, not
exceptions that kill a multi-shard job:

* **Exception taxonomy** — :class:`BackendError` (a backend could not
  execute a request at all; non-retryable validation/protocol errors)
  vs :class:`WorkerCrashed` (a worker died mid-shard; infrastructure,
  retryable) vs :class:`WorkerTimeout` (the shard-deadline watchdog
  killed a hung worker; also retryable).  :class:`ShardPoisoned` is the
  terminal classification: the *same* shard failing on every attempt is
  deterministic, not transient, and fails fast carrying the full
  per-attempt provenance (:class:`AttemptRecord`).
* **Retry with backoff + jitter** — :class:`RetryPolicy` classifies
  retryability and spaces attempts (exponential backoff, deterministic
  hash-derived jitter so replays are reproducible);
  :func:`dispatch_with_retries` drives a future-returning launch
  callable through up to ``max_retries`` relaunches without blocking
  any thread between attempts (timer-scheduled), and
  :func:`retry_call` is the synchronous sibling for store writes.
* **Worker supervision** — :class:`WorkerSupervisor` is a poll-loop
  watchdog enforcing per-shard wall-clock deadlines
  (``ExecutionOptions.shard_timeout``) and heartbeat freshness on the
  procpool's persistent workers, killing hung (not just dead) processes
  so their shard requeues.
* **Graceful degradation** — :class:`ServiceHealth` latches a
  ``degraded`` flag after a threshold of consecutive infrastructure
  failures; the service then measures remaining shards on the inline
  (in-process) path, which is byte-identical by the stateless
  noise-stream guarantee.
* **Deterministic fault injection** — :class:`FaultPlan`/:class:`Fault`
  script seeded failures (worker crash before/after a shard, hang,
  corrupted frame) keyed by per-shard-fingerprint attempt counters, so
  a chaos run is reproducible regardless of dispatch interleaving;
  :class:`FaultyStore` injects store-write ``OSError`` the same way.
  The ``chaos:<inner>`` backend wrapper lives in
  :mod:`repro.api.backends` (it *is* a backend); the plan vocabulary
  lives here so tests and benchmarks can build plans without touching
  process machinery.

Everything here is idempotency-powered: shards are content-addressed
and every noise stream derives statelessly per (seed, site, batch), so
replaying a failed shard — on a fresh worker, after a timeout kill, or
inline after degradation — produces byte-identical curves.
"""

from __future__ import annotations

import hashlib
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from .events import AnalysisCancelled

__all__ = ["BackendError", "WorkerCrashed", "WorkerTimeout",
           "WorkerPreempted", "ShardPoisoned",
           "AttemptRecord", "RetryPolicy", "dispatch_with_retries",
           "retry_call", "WorkerSupervisor", "ServiceHealth",
           "Fault", "FaultPlan", "FaultyStore", "FAULT_KINDS"]

logger = logging.getLogger("repro.api.resilience")


class BackendError(RuntimeError):
    """A backend could not execute a request (bad combo or worker failure).

    Bare :class:`BackendError` is **not retryable**: it covers
    deterministic refusals (session refs on a process backend, protocol
    misuse, in-worker measurement errors) that would fail identically
    on every attempt.  Transient infrastructure failures raise the
    :class:`WorkerCrashed`/:class:`WorkerTimeout` subclasses instead.
    """


class WorkerCrashed(BackendError):
    """A worker process died (or its channel broke) mid-shard.

    Infrastructure, not measurement: the shard itself is intact and a
    replay on a fresh worker is byte-identical, so this is retryable.
    """


class WorkerTimeout(WorkerCrashed):
    """The supervision watchdog killed a worker past its shard deadline
    (or with stale heartbeats — hung, not just dead).  Retryable like
    any other worker loss; the attempt provenance records the reason."""


class WorkerPreempted(WorkerTimeout):
    """The fair scheduler killed a worker mid-shard to free its slot
    for a starved tenant.

    A :class:`WorkerTimeout` subclass so every existing classification
    (retryable infrastructure loss, byte-identical replay) applies —
    but the service's preemption wrapper intercepts it *before* the
    retry layer sees it: a preempted shard requeues immediately without
    burning retry budget, feeding the degradation streak, or counting
    as a worker restart (the worker was healthy; we shot it on
    purpose)."""


@dataclass(frozen=True)
class AttemptRecord:
    """Provenance of one failed execution attempt of one shard."""

    attempt: int                 # 0-based attempt index
    error_type: str
    message: str
    elapsed_seconds: float

    def to_payload(self) -> dict:
        return {"attempt": self.attempt, "error_type": self.error_type,
                "message": self.message,
                "elapsed_seconds": self.elapsed_seconds}

    def __str__(self) -> str:
        return (f"attempt {self.attempt}: {self.error_type} after "
                f"{self.elapsed_seconds:.2f}s — {self.message}")


class ShardPoisoned(RuntimeError):
    """One shard failed every allowed attempt: deterministic, not transient.

    Carries the full attempt provenance so the operator can tell a
    flaky worker fleet (varied errors, long gaps) from a poisoned shard
    (the same error, attempt after attempt).  Raised instead of the
    last error once ``max_retries`` is exhausted — loudly, promptly,
    never a hang.
    """

    def __init__(self, describe: str, attempts: list[AttemptRecord]):
        lines = "; ".join(str(record) for record in attempts)
        super().__init__(
            f"shard {describe} failed {len(attempts)} time"
            f"{'' if len(attempts) == 1 else 's'} and is classified as "
            f"deterministically poisoned ({lines})")
        self.describe = describe
        self.attempts = list(attempts)

    def to_payload(self) -> dict:
        return {"shard": self.describe,
                "attempts": [record.to_payload()
                             for record in self.attempts]}


@dataclass(frozen=True)
class RetryPolicy:
    """How failed shards are requeued: spacing and retryability.

    ``delay(attempt, key)`` grows exponentially from ``base_delay`` by
    ``multiplier``, capped at ``max_delay``, plus a deterministic
    jitter fraction (up to ``jitter`` of the delay) derived by hashing
    ``(key, attempt)`` — no global RNG is consulted, so a replayed
    chaos run backs off identically.  ``retryable`` classifies
    infrastructure failures (:class:`WorkerCrashed` incl. timeouts,
    transient :class:`OSError` such as broken pipes or a full disk)
    as requeueable; everything else — measurement errors, validation
    refusals, cancellation — propagates immediately.
    """

    base_delay: float = 0.25
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("retry delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"retry multiplier must be >= 1.0, "
                             f"got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def retryable(self, error: BaseException) -> bool:
        if isinstance(error, AnalysisCancelled):
            return False
        if isinstance(error, WorkerCrashed):
            return True
        if isinstance(error, BackendError):
            return False          # deterministic refusal
        return isinstance(error, OSError)

    def delay(self, attempt: int, key: str = "") -> float:
        base = min(self.max_delay,
                   self.base_delay * (self.multiplier ** attempt))
        if self.jitter == 0.0 or base == 0.0:
            return base
        digest = hashlib.sha256(f"{key}#{attempt}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2 ** 64
        return base * (1.0 + self.jitter * fraction)


def retry_call(fn: Callable[[], object], *, policy: RetryPolicy,
               max_retries: int, describe: str,
               on_retry: Callable[[int, BaseException, float], None]
               | None = None,
               sleep: Callable[[float], None] = time.sleep):
    """Synchronously call ``fn`` with the policy's retry/backoff.

    The blocking sibling of :func:`dispatch_with_retries`, for store
    writes and other short side effects.  Exhaustion re-raises the
    *last* error unchanged (a persistent ``OSError`` should surface as
    itself, not be re-wrapped — only shard executions classify as
    poisoned).
    """
    attempt = 0
    while True:
        try:
            return fn()
        except BaseException as error:  # noqa: BLE001 — classified below
            if not policy.retryable(error) or attempt >= max_retries:
                raise
            pause = policy.delay(attempt, key=describe)
            if on_retry is not None:
                on_retry(attempt, error, pause)
            logger.warning("retrying %s after %s: %s (attempt %d/%d, "
                           "backoff %.2fs)", describe,
                           type(error).__name__, error, attempt + 1,
                           max_retries, pause)
            sleep(pause)
            attempt += 1


def dispatch_with_retries(launch: Callable[[int], "object"], *,
                          policy: RetryPolicy, max_retries: int,
                          describe: str,
                          should_abort: Callable[[], bool] | None = None,
                          on_retry: Callable[[int, BaseException, float],
                                             None] | None = None,
                          on_outcome: Callable[[BaseException | None],
                                               None] | None = None):
    """Drive ``launch(attempt) -> Future`` through retry attempts.

    Returns one outer :class:`~concurrent.futures.Future` that resolves
    with the first successful attempt's result, the first non-retryable
    error, :class:`~repro.api.events.AnalysisCancelled` when
    ``should_abort`` turns true between attempts, or
    :class:`ShardPoisoned` (with full :class:`AttemptRecord`
    provenance) once ``max_retries`` relaunches are exhausted.  Backoff
    never blocks a thread: relaunches are timer-scheduled.

    ``on_retry(attempt, error, delay)`` fires before each relaunch
    (the service turns it into ``shard_retry`` events);
    ``on_outcome(error_or_none)`` fires exactly once when the outer
    future resolves (the degradation tracker's feed).
    """
    from concurrent.futures import Future

    outer: Future = Future()
    attempts: list[AttemptRecord] = []
    started = [0.0]

    def resolve_error(error: BaseException) -> None:
        if on_outcome is not None:
            on_outcome(error)
        outer.set_exception(error)

    def start_attempt() -> None:
        if should_abort is not None and should_abort():
            resolve_error(AnalysisCancelled(
                f"shard {describe} cancelled between retry attempts"))
            return
        started[0] = time.monotonic()
        try:
            inner = launch(len(attempts))
        except BaseException as error:  # noqa: BLE001 — classified below
            handle_failure(error)
            return
        inner.add_done_callback(attempt_done)

    def attempt_done(inner) -> None:
        error = inner.exception()
        if error is None:
            if on_outcome is not None:
                on_outcome(None)
            outer.set_result(inner.result())
            return
        handle_failure(error)

    def handle_failure(error: BaseException) -> None:
        attempts.append(AttemptRecord(
            attempt=len(attempts), error_type=type(error).__name__,
            message=str(error),
            elapsed_seconds=time.monotonic() - started[0]))
        if not policy.retryable(error):
            resolve_error(error)
            return
        if len(attempts) > max_retries:
            poisoned = ShardPoisoned(describe, attempts)
            poisoned.__cause__ = error
            resolve_error(poisoned)
            return
        pause = policy.delay(len(attempts) - 1, key=describe)
        if on_retry is not None:
            on_retry(len(attempts), error, pause)
        timer = threading.Timer(pause, start_attempt)
        timer.daemon = True
        timer.start()

    start_attempt()
    return outer


# --------------------------------------------------------------- supervision
@dataclass
class _Watch:
    """One supervised execution (see :class:`WorkerSupervisor`)."""

    deadline: float | None
    beat: Callable[[], float] | None
    grace: float | None
    kill: Callable[[str], None]
    describe: str


class WorkerSupervisor:
    """Poll-loop watchdog over in-flight worker executions.

    Two tripwires per watched execution:

    * **deadline** — an absolute monotonic instant (the shard's
      wall-clock budget, ``ExecutionOptions.shard_timeout`` from its
      start); past it the worker is killed within one poll interval.
    * **heartbeat staleness** — ``beat()`` reports the monotonic time
      of the worker's last heartbeat frame; silence longer than
      ``grace`` means the worker is hung (not merely slow — a healthy
      worker's heartbeat thread beats through any computation), and it
      is killed even without an explicit deadline.

    ``kill(reason)`` is the caller's teardown (mark the worker, SIGKILL
    the process); the killed worker's read loop then observes EOF and
    raises :class:`WorkerTimeout`, which the retry layer requeues.
    The poll thread starts lazily and is shared by every watch.
    """

    def __init__(self, poll_interval: float = 0.1):
        self.poll_interval = float(poll_interval)
        self._watches: dict[int, _Watch] = {}
        self._ticket = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def watch(self, *, kill: Callable[[str], None], describe: str,
              deadline: float | None = None,
              beat: Callable[[], float] | None = None,
              grace: float | None = None) -> int:
        """Begin supervising one execution; returns an unwatch token."""
        with self._lock:
            self._ticket += 1
            token = self._ticket
            self._watches[token] = _Watch(deadline=deadline, beat=beat,
                                          grace=grace, kill=kill,
                                          describe=describe)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, name="repro-supervisor", daemon=True)
                self._thread.start()
        return token

    def unwatch(self, token: int) -> None:
        with self._lock:
            self._watches.pop(token, None)

    def close(self) -> None:
        self._stop.set()

    def _loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            now = time.monotonic()
            with self._lock:
                snapshot = list(self._watches.items())
            for token, entry in snapshot:
                reason = None
                if entry.deadline is not None and now > entry.deadline:
                    reason = (f"{entry.describe}: shard deadline exceeded "
                              f"(watchdog killed the worker)")
                elif (entry.grace is not None and entry.beat is not None
                      and now - entry.beat() > entry.grace):
                    reason = (f"{entry.describe}: worker heartbeats stale "
                              f"for over {entry.grace:.1f}s (hung worker "
                              f"killed by watchdog)")
                if reason is None:
                    continue
                self.unwatch(token)
                try:
                    entry.kill(reason)
                except Exception:  # noqa: BLE001 — watchdog must survive
                    logger.exception("supervisor kill failed for %s",
                                     entry.describe)


# -------------------------------------------------------------- degradation
class ServiceHealth:
    """Latching pool-collapse detector behind graceful degradation.

    Counts *consecutive* infrastructure failures (worker crashes,
    timeouts, transient ``OSError``) across shard executions; a success
    resets the streak.  Once the streak reaches ``degrade_threshold``
    the ``degraded`` flag latches (it never unlatches — a collapsing
    pool should not flap) and the service measures remaining shards on
    the in-process inline path instead of erroring jobs.
    ``degrade_threshold=None`` disables degradation entirely.
    """

    def __init__(self, degrade_threshold: int | None = None):
        if degrade_threshold is not None and degrade_threshold < 1:
            raise ValueError(f"degrade_threshold must be >= 1, "
                             f"got {degrade_threshold}")
        self.degrade_threshold = degrade_threshold
        self._consecutive = 0
        self._failures = 0
        self._degraded = False
        self._lock = threading.Lock()

    @property
    def degraded(self) -> bool:
        with self._lock:
            return self._degraded

    def record(self, error: BaseException | None) -> bool:
        """Feed one shard outcome; returns ``True`` when this failure
        newly latched the degraded flag."""
        infrastructure = isinstance(error, (WorkerCrashed, OSError))
        with self._lock:
            if error is None:
                self._consecutive = 0
                return False
            if not infrastructure:
                return False
            self._consecutive += 1
            self._failures += 1
            if (self.degrade_threshold is not None and not self._degraded
                    and self._consecutive >= self.degrade_threshold):
                self._degraded = True
                return True
            return False

    def snapshot(self) -> dict:
        with self._lock:
            return {"degraded": self._degraded,
                    "consecutive_failures": self._consecutive,
                    "infrastructure_failures": self._failures,
                    "degrade_threshold": self.degrade_threshold}


# ------------------------------------------------------------ fault injection
#: Fault kinds a :class:`FaultPlan` may script (``store-error`` is the
#: :class:`FaultyStore` wrapper's domain, not the backend's).
FAULT_KINDS: tuple[str, ...] = ("crash-before", "crash-after", "corrupt",
                                "hang")


@dataclass(frozen=True)
class Fault:
    """One scripted failure.

    ``shard`` selects which shard (by first-seen fingerprint order on
    the chaos backend; ``None`` = every shard) and ``attempt`` selects
    which execution attempt of that shard (``None`` = every attempt —
    the recipe for a deterministic :class:`ShardPoisoned`).  Matching
    on the per-fingerprint attempt counter, not on wall-clock dispatch
    order, is what makes a chaos run reproducible under any
    parallelism.
    """

    kind: str
    shard: int | None = None
    attempt: int | None = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"valid: {list(FAULT_KINDS)}")

    def matches(self, shard: int, attempt: int) -> bool:
        return ((self.shard is None or self.shard == shard)
                and (self.attempt is None or self.attempt == attempt))

    def to_payload(self) -> dict:
        return {"kind": self.kind, "shard": self.shard,
                "attempt": self.attempt}


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic script of injected failures (see :class:`Fault`)."""

    faults: tuple[Fault, ...] = ()

    def fault_for(self, shard: int, attempt: int) -> Fault | None:
        """The first scripted fault matching this (shard, attempt)."""
        for fault in self.faults:
            if fault.matches(shard, attempt):
                return fault
        return None

    @classmethod
    def crash_every_shard(cls, times: int = 1,
                          where: str = "crash-before") -> "FaultPlan":
        """Crash the worker on every shard's first ``times`` attempts.

        The acceptance plan: with ``times <= max_retries`` every shard
        recovers via retry and the merged result must be byte-identical
        to a fault-free run.
        """
        return cls(faults=tuple(Fault(kind=where, shard=None, attempt=n)
                                for n in range(times)))

    @classmethod
    def hang_every_shard(cls, times: int = 1) -> "FaultPlan":
        """Hang (stop heartbeats, sleep) on every shard's first attempts."""
        return cls(faults=tuple(Fault(kind="hang", shard=None, attempt=n)
                                for n in range(times)))


class FaultyStore:
    """A :class:`~repro.api.store.ResultStore` wrapper whose first
    ``put_failures`` writes raise ``OSError`` (scripted, deterministic).

    Everything else delegates, so the wrapped store behaves identically
    once the scripted failures are spent — the regression surface for
    "a transient store-write failure must requeue, not kill the job".
    """

    def __init__(self, store, put_failures: int = 1):
        self._store = store
        self._remaining = int(put_failures)
        self.failed_puts = 0
        self._lock = threading.Lock()

    def put(self, key: str, result) -> str:
        with self._lock:
            if self._remaining > 0:
                self._remaining -= 1
                self.failed_puts += 1
                raise OSError(
                    f"chaos: injected store-write failure for {key!r} "
                    f"({self._remaining} more scripted)")
        return self._store.put(key, result)

    def __getattr__(self, name):
        return getattr(self._store, name)
