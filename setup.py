"""Setup shim for offline editable installs.

The execution environment has no network access and no ``wheel`` package, so
PEP 517 editable builds are unavailable; this shim lets
``pip install -e . --no-build-isolation`` (and plain ``pip install -e .``)
use the legacy setuptools develop path.  Package metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
