"""Validate the Gaussian noise model against bit-true LUT execution (X1).

The methodology rests on modelling approximate multipliers as Gaussian
noise (paper Sec. III).  This example closes the loop the paper leaves
open: it runs a trained CapsNet with *actual* approximate products (every
convolution product routed through the component's 256×256 LUT on
Eq.-1-quantised operands) and compares against the Gaussian prediction.

Also prints the Fig. 6-style error profiles showing *why* the model works:
MAC accumulation makes component errors Gaussian by the CLT.

Run:  python examples/bittrue_validation.py
"""

from repro.experiments import bittrue_validation, fig6


def main() -> None:
    print("=== Fig. 6: error profiles (NGR / DM1 at 1, 9, 81 MACs) ===")
    profiles = fig6.run(samples=50_000)
    print(profiles.format_text())
    print("\nnote the ~sqrt(depth) growth of the fitted std and the "
          "Gaussian-like accumulated distributions (CLT), which is what "
          "licenses the paper's noise model.\n")

    print("=== X1: bit-true vs Gaussian-modelled accuracy ===")
    result = bittrue_validation.run(eval_samples=64)
    print(result.format_text())
    print(f"\nlargest model-vs-reality accuracy gap: {result.max_gap():.3f}")
    print("small gaps => the Gaussian injection methodology predicts the "
          "impact of real approximate multipliers.")


if __name__ == "__main__":
    main()
