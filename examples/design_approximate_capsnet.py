"""End-to-end approximate-CapsNet design across all paper benchmarks.

Runs the full six-step ReD-CaNe methodology (Fig. 7) on each Table II
benchmark, producing for every network: the per-operation component
assignment, the validated accuracy of the resulting approximate design,
and the estimated multiplier-energy saving.

Run:  python examples/design_approximate_capsnet.py  [benchmark ...]
      (default: DeepCaps/MNIST and CapsNet/MNIST)
"""

import sys

from repro.approx import default_library
from repro.core import ReDCaNe, ReDCaNeConfig
from repro.zoo import PAPER_BENCHMARKS, get_trained


def design_for(label: str, *, eval_samples: int = 128) -> None:
    benchmarks = {b[0]: (b[1], b[2]) for b in PAPER_BENCHMARKS}
    preset, dataset = benchmarks[label]
    print(f"\n=== {label} ({preset} on {dataset}) ===")
    entry = get_trained(preset, dataset)
    print(f"clean accuracy: {entry.test_accuracy:.2%}")
    config = ReDCaNeConfig(
        nm_values=(0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.001, 0.0),
        safety_factor=2.0)
    design = ReDCaNe(entry.model, entry.test_set.subset(eval_samples),
                     default_library(), config).run()
    print(design.summary())


def main() -> None:
    requested = [a for a in sys.argv[1:] if not a.startswith("-")]
    labels = requested or ["DeepCaps/MNIST", "CapsNet/MNIST"]
    for label in labels:
        design_for(label)


if __name__ == "__main__":
    main()
