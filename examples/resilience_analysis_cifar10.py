"""Reproduce the paper's CIFAR-10 case study (Sec. VI-A, Figs. 9-10).

Uses the trained DeepCaps zoo entry on the synthetic CIFAR-10 stand-in,
runs the group-wise (Step 2) and layer-wise (Step 4) resilience sweeps,
and prints ASCII renderings of the two figures.

Run:  python examples/resilience_analysis_cifar10.py  [--quick]
"""

import sys

from repro.experiments import fig9, fig10
from repro.experiments.common import ExperimentScale


def ascii_curve(points: list[tuple[float, float]], *, width: int = 40) -> str:
    """One-line sparkline of accuracy drop vs NM (left = large NM)."""
    glyphs = " .:-=+*#%@"
    cells = []
    for _, drop in points:
        severity = min(max(-drop, 0.0), 1.0)
        cells.append(glyphs[int(severity * (len(glyphs) - 1))])
    return "".join(cells).ljust(width)


def main() -> None:
    quick = "--quick" in sys.argv
    scale = (ExperimentScale.quick() if quick
             else ExperimentScale(eval_samples=192))

    print("=== Fig. 9: group-wise resilience (DeepCaps / synth-cifar10) ===")
    result9 = fig9.run(scale=scale)
    print(result9.format_text())
    print("\nseverity sparklines (large NM -> small NM; darker = worse):")
    for group, series in result9.series().items():
        print(f"  {group:14s} |{ascii_curve(series)}|")
    ranking = result9.resilience_ranking()
    print(f"\nresilience ranking: {' > '.join(ranking)}")
    print("paper: softmax / logits update more resilient than "
          "MAC outputs / activations\n")

    print("=== Fig. 10: layer-wise resilience of non-resilient groups ===")
    result10 = fig10.run(scale=scale)
    print(result10.format_text())
    for group in ("mac_outputs", "activations"):
        print(f"\n{group}: least resilient = "
              f"{result10.least_resilient_layer(group)} "
              f"(paper: the first convolutional layer)")


if __name__ == "__main__":
    main()
