"""Quickstart: train a CapsNet, inject approximation noise, run ReD-CaNe.

Walks the full paper pipeline on the smallest benchmark in ~1 minute:

1. train a scaled CapsNet [25] on the synthetic MNIST stand-in;
2. show the Eq. 3-4 noise model degrading accuracy as NM grows;
3. submit a declarative resilience query through the analysis service
   (futures-first: a handle now, partial curves as shards land via the
   event stream, the full curves when you ask);
4. run the six-step ReD-CaNe methodology to design an approximate CapsNet.

Run:  python examples/quickstart.py
"""

from repro.api import (AnalysisRequest, ExecutionOptions, ResilienceService)
from repro.approx import default_library
from repro.core import (NoiseSpec, ReDCaNe, ReDCaNeConfig, noisy_accuracy)
from repro.data import make_split
from repro.models import build_model
from repro.nn.hooks import GROUP_MAC, GROUP_SOFTMAX
from repro.train import TrainConfig, Trainer, evaluate_accuracy


def main() -> None:
    # 1. Data + model + training ------------------------------------------
    train_set, test_set = make_split("synth-mnist", 800, 192, seed=1)
    model = build_model("capsnet-micro", in_channels=1, image_size=28, seed=3)
    print(f"training capsnet-micro on {train_set.name} "
          f"({len(train_set)} samples) ...")
    Trainer(model, TrainConfig(epochs=3)).fit(train_set)
    clean = evaluate_accuracy(model, test_set)
    print(f"clean test accuracy: {clean:.2%}\n")

    # 2. Noise injection (Eq. 3-4) ----------------------------------------
    print("accuracy under Gaussian approximation noise (NA=0):")
    print(f"{'NM':>8s}  {'MAC outputs':>12s}  {'softmax':>12s}")
    for nm in (0.001, 0.01, 0.05, 0.1, 0.5):
        acc_mac = noisy_accuracy(model, test_set, NoiseSpec(nm=nm),
                                 groups=[GROUP_MAC])
        acc_soft = noisy_accuracy(model, test_set, NoiseSpec(nm=nm),
                                  groups=[GROUP_SOFTMAX])
        print(f"{nm:8g}  {acc_mac:12.2%}  {acc_soft:12.2%}")
    print("-> the softmax of dynamic routing tolerates far more noise "
          "(the paper's headline finding)\n")

    # 3. The same question as a declarative, handle-based submission ------
    # The threads backend shards the request per target, and the handle's
    # event stream delivers each shard's merged-so-far partial curves the
    # moment it lands — a triage client can rank targets long before the
    # full run finishes.  (Point a RemoteService at `repro serve` and the
    # identical loop consumes the chunked HTTP event stream instead;
    # handle.cancel() would drop the unstarted shards cooperatively.)
    service = ResilienceService(use_store=False, backend="threads",
                                max_parallel=2)
    ref = service.register("quickstart", model, test_set)
    handle = service.submit(AnalysisRequest(
        model=ref, targets=((GROUP_MAC, None), (GROUP_SOFTMAX, None)),
        nm_values=(0.5, 0.05, 0.005, 0.0),
        options=ExecutionOptions(batch_size=64)))
    print(f"submitted analysis job {handle.key[:16]}… [{handle.status()}]")
    for event in handle.events():     # live progress, then the terminal event
        if event.kind == "shard_done":
            partial = handle.partial()
            done = ", ".join(str(key) for key in partial.curves)
            print(f"  {event.kind}: {partial.shards_done}/"
                  f"{partial.shards_total} shards, curves so far: {done}")
        else:
            print(f"  {event.kind}")
    result = handle.result()          # already resolved; exact final curves
    for group in (GROUP_MAC, GROUP_SOFTMAX):
        tolerable = result.curve_for(group).tolerable_nm()
        print(f"  tolerable NM for {group}: {tolerable:g}")
    service.close()
    print()

    # 4. The six-step methodology -----------------------------------------
    config = ReDCaNeConfig(
        nm_values=(0.5, 0.1, 0.05, 0.01, 0.005, 0.001, 0.0),
        safety_factor=2.0, verbose=True)
    design = ReDCaNe(model, test_set, default_library(), config).run()
    print()
    print(design.summary())


if __name__ == "__main__":
    main()
